package server

import (
	"encoding/json"
	"fmt"

	"afterimage"
	"afterimage/internal/store"
)

// SpecSchema versions the canonical fingerprint encoding. Bumping it
// invalidates every cached result at once — which is exactly what a change
// to campaign semantics requires.
const SpecSchema = "afterimage-campaign/1"

// maxSpecBits bounds a single campaign's secret length so one request
// cannot monopolise a worker for hours. Larger studies run through the
// batch binaries, not the service.
const maxSpecBits = 4096

// CampaignSpec is the service's submission unit: one fault-sweep campaign.
// Identity — and therefore the cache key — is the canonical encoding of the
// simulation-relevant fields only; Tenant and TimeoutMs shape admission and
// deadlines but two tenants submitting the same campaign share one cached
// result (that is the content-addressing payoff).
type CampaignSpec struct {
	// Tenant names the submitting tenant for quota accounting and
	// per-tenant metrics ("anonymous" when empty).
	Tenant string `json:"tenant,omitempty"`
	// Attack is the swept attack: v1-thread | v1-process | v2-kernel |
	// covert.
	Attack string `json:"attack"`
	// Model is the simulated machine: coffeelake (default) | haswell.
	Model string `json:"model,omitempty"`
	// Seed drives every pseudo-random element; equal seeds reproduce
	// campaigns bit-for-bit.
	Seed int64 `json:"seed,omitempty"`
	// Bits is the secret length per sweep point (default 32).
	Bits int `json:"bits,omitempty"`
	// Intensities are the fault-injection intensities to sample (default
	// 0, 0.5, 1, 2, 4).
	Intensities []float64 `json:"intensities,omitempty"`
	// MaxCycles arms the per-point cycle-budget watchdog (0 = off). It is
	// part of campaign identity: a budget kill changes the result.
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// TimeoutMs is the per-request wall deadline for a fresh run (0 = the
	// server default). Wall clocks are nondeterministic, so an expired
	// deadline cancels the campaign (checkpointing progress) rather than
	// degrading points — nothing time-dependent is ever cached.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// The accepted attack and model spellings (the CLI spellings).
var specAttacks = map[string]afterimage.SweepAttack{
	"v1-thread":  afterimage.SweepV1Thread,
	"v1-process": afterimage.SweepV1Process,
	"v2-kernel":  afterimage.SweepV2Kernel,
	"covert":     afterimage.SweepCovert,
}

var specModels = map[string]afterimage.Model{
	"coffeelake": afterimage.CoffeeLake,
	"haswell":    afterimage.Haswell,
}

// Normalize fills defaults so that specs spelling a default explicitly and
// specs omitting it canonicalise — and cache — identically.
func (sp CampaignSpec) Normalize() CampaignSpec {
	if sp.Tenant == "" {
		sp.Tenant = "anonymous"
	}
	if sp.Model == "" {
		sp.Model = "coffeelake"
	}
	if sp.Bits == 0 {
		sp.Bits = 32
	}
	if len(sp.Intensities) == 0 {
		sp.Intensities = []float64{0, 0.5, 1, 2, 4}
	}
	return sp
}

// Validate rejects malformed specs with the repo's typed *OptionError, so
// the HTTP layer can report struct/field/constraint structurally. Call on a
// Normalized spec.
func (sp CampaignSpec) Validate() error {
	if _, ok := specAttacks[sp.Attack]; !ok {
		return &afterimage.OptionError{
			Struct: "CampaignSpec", Field: "Attack", Value: sp.Attack,
			Constraint: "one of v1-thread | v1-process | v2-kernel | covert",
		}
	}
	if _, ok := specModels[sp.Model]; !ok {
		return &afterimage.OptionError{
			Struct: "CampaignSpec", Field: "Model", Value: sp.Model,
			Constraint: "one of coffeelake | haswell",
		}
	}
	if sp.Bits < 0 || sp.Bits > maxSpecBits {
		return &afterimage.OptionError{
			Struct: "CampaignSpec", Field: "Bits", Value: sp.Bits,
			Constraint: fmt.Sprintf("1..%d (0 means default 32)", maxSpecBits),
		}
	}
	if sp.TimeoutMs < 0 {
		return &afterimage.OptionError{
			Struct: "CampaignSpec", Field: "TimeoutMs", Value: sp.TimeoutMs,
			Constraint: ">= 0 (0 means the server default)",
		}
	}
	if err := sp.labOptions().Validate(); err != nil {
		return err
	}
	// The sweep's own validation covers Bits and per-intensity range with
	// the same typed machinery.
	return sp.sweepOptions().Validate()
}

// canonicalSpec is the identity encoding: fixed field order, no admission
// fields, explicit schema token.
type canonicalSpec struct {
	Schema      string    `json:"schema"`
	Attack      string    `json:"attack"`
	Model       string    `json:"model"`
	Seed        int64     `json:"seed"`
	Bits        int       `json:"bits"`
	Intensities []float64 `json:"intensities"`
	MaxCycles   uint64    `json:"max_cycles"`
}

// Key is the spec's content address: the sha256 of its canonical identity
// encoding. Call on a Normalized spec — Key(Normalize(s)) is stable across
// default spellings.
func (sp CampaignSpec) Key() string {
	raw, err := json.Marshal(canonicalSpec{
		Schema:      SpecSchema,
		Attack:      sp.Attack,
		Model:       sp.Model,
		Seed:        sp.Seed,
		Bits:        sp.Bits,
		Intensities: sp.Intensities,
		MaxCycles:   sp.MaxCycles,
	})
	if err != nil {
		// Unreachable for the field types above, but a stable fallback
		// beats a panic in a request handler.
		raw = []byte(err.Error())
	}
	return store.Key(raw)
}

// labOptions derives the per-campaign lab configuration.
func (sp CampaignSpec) labOptions() afterimage.Options {
	return afterimage.Options{
		Model: specModels[sp.Model],
		Seed:  sp.Seed,
	}
}

// sweepOptions derives the sweep configuration (runner options are the
// server's, attached at execution time).
func (sp CampaignSpec) sweepOptions() afterimage.SweepOptions {
	return afterimage.SweepOptions{
		Attack:      specAttacks[sp.Attack],
		Bits:        sp.Bits,
		Intensities: sp.Intensities,
		MaxCycles:   sp.MaxCycles,
	}
}
