package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"afterimage/internal/telemetry"
)

// admission is the server's two-level admission controller:
//
//   - Per-tenant quota: a tenant may have at most tenantQuota campaigns
//     executing or queued. The quota check never queues — a tenant over its
//     quota is told 429 + Retry-After immediately, so one tenant cannot
//     occupy the shared queue.
//   - Global slots: at most maxConcurrent campaigns execute at once; up to
//     queueDepth more wait in a bounded admission queue. Beyond that the
//     server sheds load with 429 + Retry-After instead of queueing
//     unboundedly — under overload, fast rejection is the only behaviour
//     that keeps latency bounded for the traffic that is admitted.
//
// Cache hits and single-flight joins bypass admission entirely; only work
// that will actually occupy a simulator passes through here.
type admission struct {
	sem        chan struct{} // global execution slots
	queued     atomic.Int64  // campaigns waiting for a slot
	queueDepth int64

	tenantQuota int
	mu          sync.Mutex
	tenants     map[string]int // tenant → campaigns admitted and not yet released

	retryAfter time.Duration

	shed, quotaRejected, admitted *telemetry.Counter
	waiting                       *telemetry.Gauge
	queueWait                     *telemetry.Histogram
}

// queueWaitBounds bucket the admission wait (µs): sub-millisecond when slots
// are free, up to tens of seconds when the queue is the bottleneck.
var queueWaitBounds = []uint64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

func newAdmission(maxConcurrent, queueDepth, tenantQuota int, retryAfter time.Duration, reg *telemetry.Registry) *admission {
	a := &admission{
		sem:         make(chan struct{}, maxConcurrent),
		queueDepth:  int64(queueDepth),
		tenantQuota: tenantQuota,
		tenants:     make(map[string]int),
		retryAfter:  retryAfter,
	}
	if reg != nil {
		a.shed = reg.Counter("server.admission.shed")
		a.quotaRejected = reg.Counter("server.admission.quota_rejected")
		a.admitted = reg.Counter("server.admission.admitted")
		a.waiting = reg.Gauge("server.admission.queued")
		a.queueWait = reg.Histogram("server.queue.wait.us", queueWaitBounds)
	}
	return a
}

// acquire admits one campaign for tenant, blocking in the bounded queue when
// all execution slots are busy. It returns a release closure on success and
// an *apiError (429/503) when the tenant is over quota, the queue is full,
// or ctx ends while waiting. release is idempotent.
func (a *admission) acquire(ctx context.Context, tenant string) (func(), *apiError) {
	a.mu.Lock()
	if a.tenants[tenant] >= a.tenantQuota {
		a.mu.Unlock()
		inc(a.quotaRejected)
		return nil, &apiError{
			Status:     429,
			Msg:        fmt.Sprintf("tenant %q is at its quota of %d concurrent campaigns", tenant, a.tenantQuota),
			RetryAfter: a.retryAfter,
		}
	}
	a.tenants[tenant]++
	a.mu.Unlock()

	releaseTenant := func() {
		a.mu.Lock()
		if a.tenants[tenant]--; a.tenants[tenant] <= 0 {
			delete(a.tenants, tenant)
		}
		a.mu.Unlock()
	}

	enqueued := time.Now()
	if n := a.queued.Add(1); n > a.queueDepth {
		a.queued.Add(-1)
		releaseTenant()
		inc(a.shed)
		return nil, &apiError{
			Status:     429,
			Msg:        fmt.Sprintf("admission queue is full (%d waiting)", a.queueDepth),
			RetryAfter: a.retryAfter,
		}
	}
	if a.waiting != nil {
		a.waiting.Set(a.queued.Load())
	}
	select {
	case a.sem <- struct{}{}:
	case <-ctx.Done():
		a.queued.Add(-1)
		releaseTenant()
		return nil, &apiError{Status: 503, Msg: "canceled while queued for admission", RetryAfter: a.retryAfter}
	}
	a.queued.Add(-1)
	if a.waiting != nil {
		a.waiting.Set(a.queued.Load())
	}
	if a.queueWait != nil {
		a.queueWait.Observe(uint64(time.Since(enqueued).Microseconds()))
	}
	inc(a.admitted)

	var once sync.Once
	return func() {
		once.Do(func() {
			<-a.sem
			releaseTenant()
		})
	}, nil
}

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}
