package server

import "context"

// SetTestGate installs a hook that runs inside runCampaign before the
// simulation starts; returning an error aborts the campaign with it. Tests
// use it to hold campaigns mid-flight deterministically.
func (s *Server) SetTestGate(fn func(ctx context.Context, key string) error) { s.testGate = fn }

// SetTestPointDone installs an observer for per-point checkpoint writes.
func (s *Server) SetTestPointDone(fn func(key string, completed int)) { s.testPointDone = fn }
