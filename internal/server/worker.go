package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"afterimage"
	"afterimage/internal/cluster"
	"afterimage/internal/obslog"
	"afterimage/internal/runner"
	"afterimage/internal/telemetry"
)

// WorkerConfig assembles a Worker.
type WorkerConfig struct {
	// ID is the worker's metric-safe name (required; 1..64 chars of
	// [a-zA-Z0-9_-]) — what the coordinator's failover audit trail and
	// per-worker histograms call it.
	ID string
	// CheckpointDir holds the worker's per-campaign runner checkpoints
	// (required). A SIGKILLed worker that restarts over the same directory
	// resumes its interrupted campaigns point-for-point.
	CheckpointDir string
	// MaxConcurrent bounds simultaneously executing jobs; excess requests
	// are shed with 503 so the coordinator fails over (default 2).
	MaxConcurrent int
	// PointWorkers is the runner worker count inside each campaign
	// (default 1; results are identical for any value).
	PointWorkers int
	// Registry receives the worker.* and runner.* counters; nil creates a
	// private one.
	Registry *telemetry.Registry
	// Logger receives structured per-job logs. nil disables logging.
	Logger *obslog.Logger
}

// Worker is the lab-pool execution node: the same campaign validation and
// supervised runner job unit as the coordinator's local path, behind the
// cluster wire protocol (POST /v1/execute, GET /healthz). Campaigns are pure
// functions of their specs, so the bytes a worker returns are identical to
// what any sibling — or the coordinator running locally — would produce.
type Worker struct {
	cfg WorkerConfig
	reg *telemetry.Registry
	log *obslog.Logger

	sem      chan struct{}
	draining atomic.Bool
	inflight atomic.Int64
	wg       sync.WaitGroup

	requests, executed, completed *telemetry.Counter
	failed, shed                  *telemetry.Counter
}

// NewWorker builds a worker over its checkpoint directory.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("server: WorkerConfig.ID is required")
	}
	if cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("server: WorkerConfig.CheckpointDir is required")
	}
	if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: create worker checkpoint dir: %w", err)
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.PointWorkers <= 0 {
		cfg.PointWorkers = 1
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	reg := cfg.Registry
	return &Worker{
		cfg: cfg,
		reg: reg,
		log: cfg.Logger,
		sem: make(chan struct{}, cfg.MaxConcurrent),

		requests:  reg.Counter("worker.requests"),
		executed:  reg.Counter("worker.jobs.executed"),
		completed: reg.Counter("worker.jobs.completed"),
		failed:    reg.Counter("worker.jobs.failed"),
		shed:      reg.Counter("worker.jobs.shed"),
	}, nil
}

// Registry exposes the worker's metric registry.
func (w *Worker) Registry() *telemetry.Registry { return w.reg }

// Handler builds the worker's routing table (the cluster wire protocol plus
// the standard observability endpoints).
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+cluster.ExecutePath, w.handleExecute)
	mux.HandleFunc("GET /healthz", w.handleHealthz)
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
		writeMetricsSnapshot(rw, r, w.reg)
	})
	return mux
}

// Drain refuses new jobs (heartbeats start failing, pulling the worker out
// of rotation) and waits for in-flight jobs to finish or checkpoint.
func (w *Worker) Drain(ctx context.Context) error {
	w.draining.Store(true)
	done := make(chan struct{})
	go func() {
		w.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: worker drain incomplete: %w", ctx.Err())
	}
}

// handleExecute runs one campaign job: the identical validation the
// coordinator front door applies, then the supervised runner with a
// fingerprint-keyed checkpoint so a killed worker resumes on restart.
func (w *Worker) handleExecute(rw http.ResponseWriter, r *http.Request) {
	w.requests.Inc()
	if w.draining.Load() {
		w.shed.Inc()
		writeJSON(rw, http.StatusServiceUnavailable, map[string]string{"error": "worker is draining"})
		return
	}
	select {
	case w.sem <- struct{}{}:
	default:
		w.shed.Inc()
		rw.Header().Set("Retry-After", "1")
		writeJSON(rw, http.StatusServiceUnavailable, map[string]string{"error": "worker at capacity"})
		return
	}
	defer func() { <-w.sem }()
	w.wg.Add(1)
	defer w.wg.Done()

	corr := requestCorrelation(r)
	ctx := obslog.WithCorrelation(r.Context(), corr)
	wlog := w.log.Ctx(ctx)

	var spec CampaignSpec
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "malformed campaign spec: " + err.Error()})
		return
	}
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		writeValidationError(rw, err)
		return
	}
	key := spec.Key()
	if want := r.Header.Get(cluster.HeaderJobKey); want != "" && want != key {
		// The coordinator and this worker disagree about the spec's content
		// address — version skew that must fail loudly, not poison a cache
		// entry under the wrong key.
		writeJSON(rw, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("spec key mismatch: coordinator sent %s, worker computed %s (schema skew?)", want, key),
		})
		return
	}

	w.executed.Inc()
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	wlog.Info("worker job started", obslog.F("key", key), obslog.F("worker", w.cfg.ID))
	body, err := w.runJob(ctx, key, spec)
	if err != nil {
		w.failed.Inc()
		status := http.StatusInternalServerError
		if ctx.Err() != nil {
			// The coordinator hung up (hedge loss, failover, client gone);
			// the checkpoint keeps completed points for the next attempt.
			status = http.StatusServiceUnavailable
		}
		wlog.Warn("worker job failed", obslog.F("key", key), obslog.F("err", err))
		writeJSON(rw, status, map[string]string{"error": err.Error()})
		return
	}
	w.completed.Inc()
	wlog.Info("worker job completed", obslog.F("key", key), obslog.F("bytes", len(body)))
	rw.Header().Set("Content-Type", "application/json")
	rw.Header().Set(cluster.HeaderJobKey, key)
	rw.WriteHeader(http.StatusOK)
	rw.Write(body)
}

// runJob executes one campaign under the request context with resume-always
// checkpointing — the worker-side twin of the coordinator's local path,
// producing byte-identical results.
func (w *Worker) runJob(ctx context.Context, key string, spec CampaignSpec) ([]byte, error) {
	lab, err := afterimage.NewLabE(spec.labOptions())
	if err != nil {
		return nil, err
	}
	so := spec.sweepOptions()
	ckpt := filepath.Join(w.cfg.CheckpointDir, key+".ckpt")
	so.Runner = runner.Options{
		Workers:        w.cfg.PointWorkers,
		Metrics:        w.reg,
		Logger:         w.log,
		CheckpointPath: ckpt,
		Resume:         true,
	}
	res, err := lab.RunFaultSweepCtx(ctx, so)
	if err != nil {
		return nil, err
	}
	body, err := res.JSON()
	if err != nil {
		return nil, fmt.Errorf("encode result: %w", err)
	}
	os.Remove(ckpt) // the delivered result supersedes it; best-effort
	return body, nil
}

// handleHealthz answers heartbeat probes: 200 while accepting jobs, 503 once
// draining — the coordinator treats any non-200 as a failed probe, so a
// draining worker leaves rotation before its listener closes.
func (w *Worker) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	status := http.StatusOK
	state := "ok"
	if w.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(rw, status, map[string]any{
		"status":   state,
		"id":       w.cfg.ID,
		"inflight": w.inflight.Load(),
	})
}

// RegisterLoop announces the worker to the coordinator now and on every
// interval until ctx ends. Periodic re-registration is the revival path: a
// worker the coordinator evicted (or a restarted coordinator with an empty
// pool) re-learns the worker within one interval.
func RegisterLoop(ctx context.Context, httpc *http.Client, coordinator string, req cluster.RegisterRequest, interval time.Duration, log *obslog.Logger) {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	if interval <= 0 {
		interval = time.Second
	}
	register := func() {
		raw, err := json.Marshal(req)
		if err != nil {
			return
		}
		rctx, cancel := context.WithTimeout(ctx, interval)
		defer cancel()
		hreq, err := http.NewRequestWithContext(rctx, http.MethodPost,
			coordinator+cluster.RegisterPath, bytes.NewReader(raw))
		if err != nil {
			return
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := httpc.Do(hreq)
		if err != nil {
			log.Debug("worker registration attempt failed",
				obslog.F("coordinator", coordinator), obslog.F("err", err))
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Warn("worker registration rejected",
				obslog.F("coordinator", coordinator), obslog.F("status", resp.StatusCode))
		}
	}
	register()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			register()
		}
	}
}
