package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"afterimage/internal/cluster"
	"afterimage/internal/server"
	"afterimage/internal/telemetry"
)

// clusterEnv boots a service with an embedded coordinator tuned for fast
// failover. Workers are registered by the caller.
func clusterEnv(t *testing.T, mut func(*cluster.Config)) (*env, *cluster.Coordinator) {
	t.Helper()
	var coord *cluster.Coordinator
	e := newEnv(t, func(cfg *server.Config) {
		ccfg := cluster.Config{
			Registry:       cfg.Registry,
			BackoffBase:    time.Millisecond,
			BackoffMax:     2 * time.Millisecond,
			DispatchRounds: 2,
		}
		if mut != nil {
			mut(&ccfg)
		}
		coord = cluster.New(ccfg)
		cfg.Cluster = coord
	})
	t.Cleanup(coord.Stop)
	return e, coord
}

// startClusterWorker boots one real Worker (the same code path the
// afterimage-worker binary runs) behind httptest.
func startClusterWorker(t *testing.T, id string) (*httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	w, err := server.NewWorker(server.WorkerConfig{
		ID:            id,
		CheckpointDir: t.TempDir(),
		Registry:      reg,
	})
	if err != nil {
		t.Fatalf("NewWorker(%s): %v", id, err)
	}
	hs := httptest.NewServer(w.Handler())
	t.Cleanup(hs.Close)
	return hs, reg
}

// TestClusterDispatchByteIdentity: a campaign dispatched to a real worker
// returns bytes identical to a single-process run, the result is cached
// normally (the resubmit is a hit, no second dispatch), and the trace grows a
// dispatch stage naming the worker.
func TestClusterDispatchByteIdentity(t *testing.T) {
	spec := tinySpec(210)
	golden := func() []byte {
		e := newEnv(t, nil)
		res, err := e.cl.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("golden run: %v", err)
		}
		return res.Body
	}()

	e, coord := clusterEnv(t, nil)
	w1, reg1 := startClusterWorker(t, "w1")
	w2, reg2 := startClusterWorker(t, "w2")
	if err := coord.Register("w1", w1.URL); err != nil {
		t.Fatal(err)
	}
	if err := coord.Register("w2", w2.URL); err != nil {
		t.Fatal(err)
	}

	res, err := e.cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("cluster submit: %v", err)
	}
	if !bytes.Equal(res.Body, golden) {
		t.Fatalf("dispatched result diverged from single-process golden (%d vs %d bytes)",
			len(res.Body), len(golden))
	}
	if got := e.counter(t, "cluster.dispatch.worker_ok"); got != 1 {
		t.Fatalf("cluster.dispatch.worker_ok = %d, want 1", got)
	}
	completed := reg1.Snapshot().Counters["worker.jobs.completed"] +
		reg2.Snapshot().Counters["worker.jobs.completed"]
	if completed != 1 {
		t.Fatalf("workers completed %d jobs, want exactly 1", completed)
	}

	// Resubmit: a cache hit served by the coordinator, no second dispatch.
	res2, err := e.cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if res2.Source != "hit" {
		t.Fatalf("resubmit source %q, want hit", res2.Source)
	}
	if got := e.counter(t, "cluster.dispatch.requests"); got != 1 {
		t.Fatalf("cluster.dispatch.requests = %d after a cache hit, want 1", got)
	}

	// The span tree records the dispatch: a dispatch stage with a job span
	// attributed to the executing worker.
	key := spec.Normalize().Key()
	trace, ok, err := e.cl.Trace(context.Background(), key)
	if err != nil || !ok {
		t.Fatalf("trace fetch: ok=%v err=%v", ok, err)
	}
	if !strings.Contains(string(trace), `"dispatch"`) {
		t.Fatalf("trace has no dispatch stage:\n%s", trace)
	}
	if !strings.Contains(string(trace), `{"k":"worker","v":"w`) {
		t.Fatalf("trace dispatch span has no worker attribute:\n%s", trace)
	}
}

// TestClusterDegradeToLocalByteIdentity: the never-refuse guarantee at the
// service level — with zero workers, and again with only an unreachable
// worker, campaigns complete locally with bytes identical to single-process
// goldens.
func TestClusterDegradeToLocalByteIdentity(t *testing.T) {
	specEmpty, specDead := tinySpec(211), tinySpec(212)
	ge := newEnv(t, nil)
	goldenEmpty, err := ge.cl.Submit(context.Background(), specEmpty)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	goldenDead, err := ge.cl.Submit(context.Background(), specDead)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}

	e, coord := clusterEnv(t, nil)

	// Empty pool: immediate local degradation.
	res, err := e.cl.Submit(context.Background(), specEmpty)
	if err != nil {
		t.Fatalf("submit with empty pool: %v", err)
	}
	if !bytes.Equal(res.Body, goldenEmpty.Body) {
		t.Fatal("empty-pool local result diverged from golden")
	}
	if got := e.counter(t, "cluster.dispatch.local"); got != 1 {
		t.Fatalf("cluster.dispatch.local = %d, want 1", got)
	}

	// A registered-but-dead worker: failover rounds burn out, then local.
	if err := coord.Register("dead", "http://127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	res, err = e.cl.Submit(context.Background(), specDead)
	if err != nil {
		t.Fatalf("submit with dead worker: %v", err)
	}
	if !bytes.Equal(res.Body, goldenDead.Body) {
		t.Fatal("dead-worker local result diverged from golden")
	}
	if got := e.counter(t, "cluster.dispatch.failovers"); got == 0 {
		t.Fatal("dead worker produced no failovers before local degradation")
	}
	if got := e.counter(t, "cluster.dispatch.local"); got != 2 {
		t.Fatalf("cluster.dispatch.local = %d, want 2", got)
	}

	// The local path writes the cache like any other: resubmit is a hit.
	res2, err := e.cl.Submit(context.Background(), specDead)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if res2.Source != "hit" || !bytes.Equal(res2.Body, goldenDead.Body) {
		t.Fatalf("degraded result not cached: source=%q", res2.Source)
	}
}

// TestClusterKilledWorkerFailsOver: the key's worker dies (listener closed —
// a crash, from the coordinator's view); the dispatch fails over and the
// campaign completes with identical bytes anyway.
func TestClusterKilledWorkerFailsOver(t *testing.T) {
	spec := tinySpec(213)
	ge := newEnv(t, nil)
	golden, err := ge.cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}

	e, coord := clusterEnv(t, func(cfg *cluster.Config) {
		cfg.DispatchRounds = 3
	})
	w1, _ := startClusterWorker(t, "w1")
	w2, _ := startClusterWorker(t, "w2")
	if err := coord.Register("w1", w1.URL); err != nil {
		t.Fatal(err)
	}
	if err := coord.Register("w2", w2.URL); err != nil {
		t.Fatal(err)
	}
	// Kill both possible primaries' tiebreak: close w1. Whichever worker the
	// key ranks first, the campaign must complete — via w2 or a failover to
	// local — with golden bytes.
	w1.Close()

	res, err := e.cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit with killed worker: %v", err)
	}
	if !bytes.Equal(res.Body, golden.Body) {
		t.Fatal("result after worker kill diverged from golden")
	}
	if got := e.counter(t, "cluster.dispatch.requests"); got != 1 {
		t.Fatalf("cluster.dispatch.requests = %d, want 1", got)
	}
}

// TestClusterRegistrationEndpoint: the HTTP registration path the worker
// binary uses — valid registrations land in the pool (visible via the status
// endpoint), junk is rejected, and re-registration is idempotent.
func TestClusterRegistrationEndpoint(t *testing.T) {
	e, _ := clusterEnv(t, nil)

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(e.hs.URL+cluster.RegisterPath, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := post(`{"id":"wx","addr":"http://127.0.0.1:19999"}`); got != http.StatusOK {
		t.Fatalf("register: status %d, want 200", got)
	}
	if got := post(`{"id":"wx","addr":"http://127.0.0.1:19999"}`); got != http.StatusOK {
		t.Fatalf("re-register: status %d, want 200 (idempotent)", got)
	}
	for _, bad := range []string{
		`{"id":"bad id","addr":"http://x"}`,          // invalid id characters
		`{"id":"wy","addr":""}`,                      // missing addr
		`{"id":"wy","addr":"http://x","extra":true}`, // unknown field
		`not json`,
	} {
		if got := post(bad); got != http.StatusBadRequest {
			t.Errorf("register %q: status %d, want 400", bad, got)
		}
	}

	resp, err := http.Get(e.hs.URL + "/v1/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Workers []cluster.WorkerStatus `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode workers: %v", err)
	}
	if len(out.Workers) != 1 || out.Workers[0].ID != "wx" || out.Workers[0].State != "healthy" {
		t.Fatalf("workers = %+v, want one healthy wx", out.Workers)
	}
}
