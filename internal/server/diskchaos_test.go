package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io/fs"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"afterimage/internal/client"
	"afterimage/internal/server"
	"afterimage/internal/store"
)

// TestDiskChaosSoak is the out-of-process disk-fault soak: it builds the
// real afterimage-serve binary and runs it with the deterministic filesystem
// fault injector live (-fs-chaos: ENOSPC, EIO, torn writes, rename
// failures), a store size budget, and the background scrubber — then gates
// on the service's degradation contract:
//
//   - every submitted campaign returns 200 with bytes identical to a
//     healthy in-process run, no matter which writes the injector failed;
//   - shed cache writes are visible (store.degraded.writes > 0), never
//     campaign failures;
//   - planted bit rot is quarantined by a scrub pass and the campaign
//     transparently recomputes;
//   - a SIGKILL mid-campaign followed by a restart over the same damaged
//     directories still serves byte-identical results.
//
// On failure the store/checkpoint directories are preserved (path logged)
// so CI can upload them as an artifact.
func TestDiskChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("disk-chaos soak skipped in -short mode")
	}

	work, err := os.MkdirTemp("", "afterimage-disk-chaos-")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if t.Failed() {
			t.Logf("disk-chaos artifacts preserved at %s", work)
			return
		}
		os.RemoveAll(work)
	}()
	storeDir := filepath.Join(work, "store")
	ckptDir := filepath.Join(work, "checkpoints")

	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(work, "afterimage-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/afterimage-serve")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build afterimage-serve: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	cl := client.New("http://" + addr)
	start := func() *exec.Cmd {
		t.Helper()
		cmd := exec.Command(bin,
			"-addr", addr, "-store", storeDir, "-checkpoints", ckptDir,
			"-max-campaigns", "2", "-queue", "8", "-tenant-quota", "8",
			"-retry-after", "1s",
			"-fs-chaos", "seed=7,enospc=0.10,eio=0.15,torn=0.08,rename=0.08",
			"-store-budget", "1048576",
			"-store-scrub-interval", "250ms",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start afterimage-serve: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := cl.WaitReady(ctx); err != nil {
			t.Fatalf("server never became ready: %v", err)
		}
		return cmd
	}

	// Goldens: every campaign's bytes from a healthy in-process service.
	seeds := []int64{950, 951, 952, 953, 954, 955}
	golden := make(map[int64][]byte)
	{
		e := newEnv(t, nil)
		for _, seed := range seeds {
			res, err := e.cl.Submit(context.Background(), tinySpec(seed))
			if err != nil {
				t.Fatalf("golden seed %d: %v", seed, err)
			}
			golden[seed] = res.Body
		}
	}
	victim := server.CampaignSpec{
		Tenant: "chaos", Attack: "v1-thread", Seed: 960,
		Bits: 16, Intensities: []float64{0, 1, 2, 3, 4, 5},
	}
	victimGolden := func() []byte {
		e := newEnv(t, nil)
		res, err := e.cl.Submit(context.Background(), victim)
		if err != nil {
			t.Fatalf("victim golden: %v", err)
		}
		return res.Body
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// ---- Generation 1: concurrent load under live fault injection. ----
	gen1 := start()
	var wg sync.WaitGroup
	for _, seed := range seeds {
		seed := seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := cl.SubmitWait(ctx, tinySpec(seed), 60)
			if err != nil {
				t.Errorf("seed %d under chaos: %v", seed, err)
				return
			}
			if !bytes.Equal(res.Body, golden[seed]) {
				t.Errorf("seed %d under chaos: bytes differ from healthy run", seed)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		gen1.Process.Kill()
		return
	}

	// Resubmitting everything must reproduce the identical bytes, whether it
	// comes back as hit (cached), miss (recomputed after a shed or
	// quarantined write), or degraded (shed again).
	for _, seed := range seeds {
		res, err := cl.SubmitWait(ctx, tinySpec(seed), 60)
		if err != nil {
			t.Fatalf("seed %d resubmit: %v", seed, err)
		}
		if !bytes.Equal(res.Body, golden[seed]) {
			t.Fatalf("seed %d resubmit: bytes differ (source %q)", seed, res.Source)
		}
	}

	// The injector must actually have shed cache writes by now; if this
	// seed's schedule was somehow all-clean the soak would be vacuous.
	if v := metricValue(t, cl, "store.degraded.writes"); v == 0 {
		t.Fatal("store.degraded.writes = 0 despite heavy fault injection; soak is vacuous")
	}

	// ---- Bit rot: flip a stored byte, scrub, verify quarantine + recompute. ----
	if entries := findEntryFiles(t, storeDir); len(entries) > 0 {
		raw, err := os.ReadFile(entries[0])
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 0x20
		if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post("http://"+addr+"/v1/store/scrub", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var rep store.ScrubReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if rep.Corrupt < 1 {
			t.Fatalf("scrub after planted bit rot: %+v, want Corrupt >= 1", rep)
		}
	}
	for _, seed := range seeds {
		res, err := cl.SubmitWait(ctx, tinySpec(seed), 60)
		if err != nil {
			t.Fatalf("seed %d after bit rot: %v", seed, err)
		}
		if !bytes.Equal(res.Body, golden[seed]) {
			t.Fatalf("seed %d after bit rot: bytes differ (source %q)", seed, res.Source)
		}
	}

	// ---- SIGKILL mid-victim, restart over the same damaged state. ----
	startedJobs := metricValue(t, cl, "runner.jobs.started")
	go cl.Submit(ctx, victim) // the kill severs this request; ignore it
	deadline := time.Now().Add(60 * time.Second)
	for metricValue(t, cl, "runner.jobs.started") <= startedJobs {
		if time.Now().After(deadline) {
			t.Fatal("victim campaign never started a point")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := gen1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	gen1.Wait()

	gen2 := start()
	defer func() {
		gen2.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { gen2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			gen2.Process.Kill()
		}
	}()

	// The interrupted victim completes with bytes identical to an
	// uninterrupted healthy run — resumed from its checkpoint if the
	// injector let the checkpoint survive, recomputed from scratch if not.
	res, err := cl.SubmitWait(ctx, victim, 60)
	if err != nil {
		t.Fatalf("victim after kill+restart: %v", err)
	}
	if !bytes.Equal(res.Body, victimGolden) {
		t.Fatalf("victim after kill+restart: bytes differ from healthy run (source %q)", res.Source)
	}
	// And the small campaigns still serve identically over the crashed,
	// fault-injected store.
	for _, seed := range seeds {
		res, err := cl.SubmitWait(ctx, tinySpec(seed), 60)
		if err != nil {
			t.Fatalf("seed %d after restart: %v", seed, err)
		}
		if !bytes.Equal(res.Body, golden[seed]) {
			t.Fatalf("seed %d after restart: bytes differ (source %q)", seed, res.Source)
		}
	}
}

// findEntryFiles lists every *.entry file under a store directory, sorted by
// path (quarantine excluded).
func findEntryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && d.Name() == store.QuarantineDir {
			return fs.SkipDir
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".entry") {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}
