package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"afterimage"
	"afterimage/internal/cluster"
	"afterimage/internal/obslog"
	"afterimage/internal/store"
	"afterimage/internal/telemetry"
)

// HeaderCampaignID carries the campaign correlation ID. A client that sets
// it on POST /v1/campaigns gets its own ID threaded through every layer —
// admission, store, runner, simulator phases — and back out in the span log;
// a request without one gets a server-minted ID, echoed on the response so
// the client can still follow its campaign.
const HeaderCampaignID = "X-Campaign-Id"

// maxCorrelationLen bounds client-supplied correlation IDs.
const maxCorrelationLen = 128

// validCorrelation accepts 1..128 chars of [a-zA-Z0-9._-] — safe in log
// lines, JSON, and trace filenames alike.
func validCorrelation(s string) bool {
	if len(s) == 0 || len(s) > maxCorrelationLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// requestCorrelation extracts the client's correlation ID or mints one.
// A malformed header is treated as absent rather than rejected: correlation
// is observability plumbing and must never fail a campaign.
func requestCorrelation(r *http.Request) string {
	if id := r.Header.Get(HeaderCampaignID); validCorrelation(id) {
		return id
	}
	return mintCorrelation()
}

// mintCorrelation generates a fresh server-side correlation ID.
func mintCorrelation() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; here a
		// constant fallback still yields a usable (if shared) ID.
		return "corr-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// traceStore retains the span record of recently completed campaigns for
// GET /v1/campaigns/{key}/trace, bounded FIFO so an unbounded campaign
// stream cannot grow server memory.
type traceStore struct {
	mu    sync.Mutex
	max   int
	recs  map[string]telemetry.SpanRecord
	order []string // insertion order, for eviction
}

func newTraceStore(max int) *traceStore {
	if max <= 0 {
		max = 256
	}
	return &traceStore{max: max, recs: make(map[string]telemetry.SpanRecord)}
}

// put records (or replaces) the trace for one campaign key.
func (t *traceStore) put(rec telemetry.SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.recs[rec.Key]; !ok {
		t.order = append(t.order, rec.Key)
		for len(t.order) > t.max {
			delete(t.recs, t.order[0])
			t.order = t.order[1:]
		}
	}
	t.recs[rec.Key] = rec
}

// get fetches the retained trace for a campaign key.
func (t *traceStore) get(key string) (telemetry.SpanRecord, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.recs[key]
	return rec, ok
}

// buildCampaignSpans derives the campaign's span tree from its completed
// SweepResult. Every input here is deterministic — the spec, the content
// address, the result curve, and the caller's correlation ID — so the tree
// (and its JSONL encoding) is byte-stable across worker counts, drains,
// restarts, and resumes, exactly like the result bytes themselves. Span
// durations are simulated cycles; wall time is nondeterministic and lives in
// the registry's latency histograms instead.
//
// Taxonomy (validated by telemetry.ValidateSpanRecord):
//
//	campaign                     tenant/attack/model/seed/bits attrs
//	├── queued       (stage)     admission wait — wall time in
//	├── admitted     (stage)       server.queue.wait.us, not here
//	└── flight       (stage)
//	    └── job[i]   (job)       one per sweep point, cycles = point cycles
//	        └── attempt[k]       retries first (outcome=retried), then the
//	            └── phase        final attempt with its train/trigger/
//	                             probe/decode phase spans
//
// Cluster-dispatched campaigns (buildCampaignSpansDispatch) append one more
// stage recording the failover audit trail:
//
//	└── dispatch     (stage)     only when the campaign went through the pool
//	    └── dispatch[k] (job)    worker/outcome/hedge attrs per attempt —
//	                             which worker ran it and why failovers
//	                             happened
func buildCampaignSpans(corr, key string, spec CampaignSpec, res afterimage.SweepResult) telemetry.SpanRecord {
	return buildCampaignSpansDispatch(corr, key, spec, res, nil)
}

// buildCampaignSpansDispatch is buildCampaignSpans plus the cluster dispatch
// trail. With no dispatch attempts the tree is bit-for-bit the single-process
// tree, so non-cluster traces stay byte-stable.
func buildCampaignSpansDispatch(corr, key string, spec CampaignSpec, res afterimage.SweepResult, dispatch []cluster.Attempt) telemetry.SpanRecord {
	root := telemetry.NewSpan("campaign", telemetry.SpanKindCampaign).
		Attr("tenant", spec.Tenant).
		Attr("attack", res.Attack).
		Attr("model", res.Model).
		Attr("seed", strconv.FormatInt(spec.Seed, 10)).
		Attr("bits", strconv.Itoa(spec.Bits))
	root.Child(telemetry.NewSpan("queued", telemetry.SpanKindStage))
	root.Child(telemetry.NewSpan("admitted", telemetry.SpanKindStage))
	flight := root.Child(telemetry.NewSpan("flight", telemetry.SpanKindStage))

	var total uint64
	for i, pt := range res.Points {
		job := flight.Child(telemetry.NewSpan(fmt.Sprintf("job[%d]", i), telemetry.SpanKindJob).
			Attr("intensity", strconv.FormatFloat(pt.Intensity, 'g', -1, 64)))
		job.Cycles = pt.Cycles
		total += pt.Cycles

		attempts := pt.Attempts
		if attempts <= 0 {
			attempts = 1
		}
		for k := 0; k < attempts-1; k++ {
			job.Child(telemetry.NewSpan(fmt.Sprintf("attempt[%d]", k), telemetry.SpanKindAttempt).
				Attr("outcome", "retried"))
		}
		final := job.Child(telemetry.NewSpan(fmt.Sprintf("attempt[%d]", attempts-1), telemetry.SpanKindAttempt))
		final.Cycles = pt.Cycles
		if pt.Degraded {
			final.Attr("outcome", "degraded")
		} else {
			final.Attr("outcome", "ok")
		}
		if pt.FaultKind != "" {
			final.Attr("fault_kind", pt.FaultKind)
		}
		if pt.Quarantined {
			final.Attr("quarantined", "true")
		}
		for _, ph := range pt.Phases {
			final.Child(&telemetry.Span{Name: ph.Name, Kind: telemetry.SpanKindPhase, Cycles: ph.Cycles})
		}
	}
	if len(dispatch) > 0 {
		stage := root.Child(telemetry.NewSpan("dispatch", telemetry.SpanKindStage))
		for k, a := range dispatch {
			sp := stage.Child(telemetry.NewSpan(fmt.Sprintf("dispatch[%d]", k), telemetry.SpanKindJob).
				Attr("worker", a.Worker).
				Attr("outcome", a.Outcome))
			if a.Hedge {
				sp.Attr("hedge", "true")
			}
			if a.Err != "" {
				sp.Attr("err", a.Err)
			}
		}
	}
	root.Cycles = total
	return telemetry.NewSpanRecord(corr, key, root)
}

// handleTrace serves a completed campaign's span tree: the JSONL span record
// by default, or — with ?format=chrome — a Chrome trace_event file that
// opens in chrome://tracing and Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed campaign key"})
		return
	}
	rec, ok := s.traces.get(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "no trace retained for campaign (not completed here, or evicted)",
		})
		return
	}
	w.Header().Set(HeaderKey, key)
	w.Header().Set(HeaderCampaignID, rec.CorrelationID)
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		if err := telemetry.WriteSpanChromeTrace(w, rec); err != nil {
			s.log.Ctx(r.Context()).Error("trace export failed", obslog.F("key", key), obslog.F("err", err))
		}
		return
	}
	line, err := rec.MarshalLine()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "encode trace: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(line)
}

// appendSpanLog writes one record to the configured span log (JSONL),
// serialised so concurrent campaign completions never tear lines.
func (s *Server) appendSpanLog(rec telemetry.SpanRecord) {
	if s.cfg.SpanLog == nil {
		return
	}
	line, err := rec.MarshalLine()
	if err != nil {
		return
	}
	s.spanLogMu.Lock()
	s.cfg.SpanLog.Write(line)
	s.spanLogMu.Unlock()
}
