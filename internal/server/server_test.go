package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"afterimage/internal/client"
	"afterimage/internal/server"
	"afterimage/internal/store"
	"afterimage/internal/telemetry"
)

// tinySpec is the campaign every handler test submits: two points, four
// bits — a few milliseconds of simulation.
func tinySpec(seed int64) server.CampaignSpec {
	return server.CampaignSpec{
		Tenant:      "t1",
		Attack:      "v1-thread",
		Seed:        seed,
		Bits:        4,
		Intensities: []float64{0, 1},
	}
}

// env is one running service over its own store/checkpoint directories.
type env struct {
	srv *server.Server
	hs  *httptest.Server
	cl  *client.Client
	reg *telemetry.Registry
	st  *store.Store

	storeDir, ckptDir string
}

// startEnv boots a service over the given directories (tests that simulate
// restarts pass the same dirs twice).
func startEnv(t *testing.T, storeDir, ckptDir string, mut func(*server.Config)) *env {
	t.Helper()
	reg := telemetry.NewRegistry()
	st, _, err := store.Open(storeDir, reg)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	cfg := server.Config{
		Store:         st,
		CheckpointDir: ckptDir,
		Registry:      reg,
		RetryAfter:    time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return &env{srv: srv, hs: hs, cl: client.New(hs.URL), reg: reg, st: st,
		storeDir: storeDir, ckptDir: ckptDir}
}

func newEnv(t *testing.T, mut func(*server.Config)) *env {
	dir := t.TempDir()
	return startEnv(t, filepath.Join(dir, "store"), filepath.Join(dir, "ckpt"), mut)
}

func (e *env) counter(t *testing.T, name string) uint64 {
	t.Helper()
	v, _ := e.reg.Snapshot().Get(name)
	return v
}

// waitCounter polls a registry counter until it reaches want.
func (e *env) waitCounter(t *testing.T, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if e.counter(t, name) >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("counter %s stuck at %d, want >= %d", name, e.counter(t, name), want)
}

// gated installs a test gate that parks every campaign until release is
// closed, reporting each started key on the returned channel.
func gated(e *env) (started chan string, release chan struct{}) {
	started = make(chan string, 16)
	release = make(chan struct{})
	e.srv.SetTestGate(func(ctx context.Context, key string) error {
		started <- key
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	return started, release
}

func TestSpecNormalizeKeyCanonical(t *testing.T) {
	implicit := server.CampaignSpec{Attack: "v1-thread"}.Normalize()
	explicit := server.CampaignSpec{
		Tenant: "someone-else", Attack: "v1-thread", Model: "coffeelake",
		Bits: 32, Intensities: []float64{0, 0.5, 1, 2, 4}, TimeoutMs: 5000,
	}.Normalize()
	if implicit.Key() != explicit.Key() {
		t.Fatalf("defaults do not canonicalise: %s vs %s", implicit.Key(), explicit.Key())
	}
	if !store.ValidKey(implicit.Key()) {
		t.Fatalf("Key %q is not a valid store key", implicit.Key())
	}
	seeded := implicit
	seeded.Seed = 7
	if seeded.Key() == implicit.Key() {
		t.Fatal("different seeds share a key")
	}
}

// TestSubmitValidationErrors: malformed and out-of-range specs are rejected
// with 400 and the typed OptionError structure (struct/field/constraint).
func TestSubmitValidationErrors(t *testing.T) {
	e := newEnv(t, nil)
	post := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(e.hs.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("non-JSON error body: %v", err)
		}
		return resp.StatusCode, m
	}

	if code, m := post(`{not json`); code != 400 || m["error"] == "" {
		t.Fatalf("malformed JSON: got %d %v", code, m)
	}
	if code, m := post(`{"attack": "v9-quantum"}`); code != 400 ||
		m["field"] != "Attack" || m["struct"] != "CampaignSpec" {
		t.Fatalf("unknown attack: got %d %v", code, m)
	}
	if code, m := post(`{"attack": "v1-thread", "model": "pentium"}`); code != 400 || m["field"] != "Model" {
		t.Fatalf("unknown model: got %d %v", code, m)
	}
	if code, m := post(`{"attack": "v1-thread", "bits": 99999}`); code != 400 || m["field"] != "Bits" {
		t.Fatalf("oversized bits: got %d %v", code, m)
	}
	if code, m := post(`{"attack": "v1-thread", "intensities": [0, -1]}`); code != 400 ||
		m["field"] != "Intensities[1]" {
		t.Fatalf("negative intensity: got %d %v", code, m)
	}
	if code, m := post(`{"attack": "v1-thread", "tenant": "no spaces allowed"}`); code != 400 {
		t.Fatalf("bad tenant: got %d %v", code, m)
	}
	if code, m := post(`{"attack": "v1-thread", "surprise": 1}`); code != 400 {
		t.Fatalf("unknown field: got %d %v", code, m)
	}
	if got := e.counter(t, "server.requests.invalid"); got != 7 {
		t.Fatalf("server.requests.invalid = %d, want 7", got)
	}
	if got := e.counter(t, "server.campaigns.executed"); got != 0 {
		t.Fatalf("invalid specs executed %d campaigns", got)
	}
}

// TestSubmitThenCacheHit: the second identical submission is a store hit
// with byte-identical body and no second execution.
func TestSubmitThenCacheHit(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()
	first, err := e.cl.Submit(ctx, tinySpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if first.Source != "miss" {
		t.Fatalf("first submission source %q, want miss", first.Source)
	}
	if !json.Valid(first.Body) {
		t.Fatalf("result is not JSON: %.100s", first.Body)
	}
	second, err := e.cl.Submit(ctx, tinySpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != "hit" {
		t.Fatalf("second submission source %q, want hit", second.Source)
	}
	if !bytes.Equal(first.Body, second.Body) {
		t.Fatalf("cache hit not byte-identical:\n%s\nvs\n%s", first.Body, second.Body)
	}
	if got := e.counter(t, "server.campaigns.executed"); got != 1 {
		t.Fatalf("executed %d campaigns, want 1", got)
	}
	if got := e.counter(t, "store.hits"); got != 1 {
		t.Fatalf("store.hits = %d, want 1", got)
	}
	// A spec spelling the defaults differently hits the same entry.
	alias := tinySpec(5)
	alias.Tenant = "t2"
	alias.Model = "coffeelake"
	third, err := e.cl.Submit(ctx, alias)
	if err != nil {
		t.Fatal(err)
	}
	if third.Source != "hit" || !bytes.Equal(first.Body, third.Body) {
		t.Fatalf("cross-tenant canonical hit failed: source=%s", third.Source)
	}
}

// TestSingleFlightDedup: N concurrent identical submissions collapse onto
// one execution; everyone receives byte-identical results.
func TestSingleFlightDedup(t *testing.T) {
	e := newEnv(t, nil)
	started, release := gated(e)

	const n = 6
	var wg sync.WaitGroup
	results := make([]*client.Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.cl.Submit(context.Background(), tinySpec(11))
		}(i)
	}
	<-started
	// All five duplicates must have joined the flight before it resumes.
	e.waitCounter(t, "server.dedup.joined", n-1)
	close(release)
	wg.Wait()

	sources := map[string]int{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i].Body, results[0].Body) {
			t.Fatalf("request %d body diverged", i)
		}
		sources[results[i].Source]++
	}
	if sources["miss"] != 1 || sources["join"] != n-1 {
		t.Fatalf("sources = %v, want 1 miss + %d join", sources, n-1)
	}
	if got := e.counter(t, "server.campaigns.executed"); got != 1 {
		t.Fatalf("executed %d campaigns for %d identical requests", got, n)
	}
}

// TestTenantQuotaRejectionRetryAfter: a tenant at its quota is told 429
// with a Retry-After hint; other tenants are unaffected.
func TestTenantQuotaRejectionRetryAfter(t *testing.T) {
	e := newEnv(t, func(c *server.Config) { c.TenantQuota = 1; c.MaxConcurrent = 4 })
	started, release := gated(e)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.cl.Submit(context.Background(), tinySpec(21)); err != nil {
			t.Errorf("campaign A: %v", err)
		}
	}()
	<-started // A holds t1's only slot

	_, err := e.cl.Submit(context.Background(), tinySpec(22))
	var re *client.RetryableError
	if !errors.As(err, &re) || re.Status != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: got %v, want 429", err)
	}
	if re.RetryAfter <= 0 {
		t.Fatalf("429 without a Retry-After hint: %+v", re)
	}
	if got := e.counter(t, "server.admission.quota_rejected"); got != 1 {
		t.Fatalf("quota_rejected = %d, want 1", got)
	}

	// A different tenant is admitted immediately.
	other := tinySpec(23)
	other.Tenant = "t2"
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.cl.Submit(context.Background(), other); err != nil {
			t.Errorf("tenant t2: %v", err)
		}
	}()
	<-started
	close(release) // unparks both held campaigns
	wg.Wait()

	// Per-tenant counters landed in the shared namespace.
	if got := e.counter(t, "server.tenant.t1.requests"); got < 2 {
		t.Fatalf("server.tenant.t1.requests = %d, want >= 2", got)
	}
	if got := e.counter(t, "server.tenant.t2.requests"); got != 1 {
		t.Fatalf("server.tenant.t2.requests = %d, want 1", got)
	}
}

// TestOverloadShedsWithRetryAfter: with one execution slot and a one-deep
// queue, a third distinct campaign is shed with 429 instead of queueing.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	e := newEnv(t, func(c *server.Config) {
		c.MaxConcurrent = 1
		c.QueueDepth = 1
		c.TenantQuota = 10
	})
	started, release := gated(e)

	var wg sync.WaitGroup
	for _, seed := range []int64{31, 32} {
		seed := seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.cl.Submit(context.Background(), tinySpec(seed)); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}()
	}
	<-started // seed A runs; seed B is parked in the admission queue
	e.waitCounter(t, "server.admission.admitted", 1)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if e.reg.Snapshot().Gauges["server.admission.queued"] > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	_, err := e.cl.Submit(context.Background(), tinySpec(33))
	var re *client.RetryableError
	if !errors.As(err, &re) || re.Status != http.StatusTooManyRequests || re.RetryAfter <= 0 {
		t.Fatalf("overload submit: got %v, want 429 + Retry-After", err)
	}
	if got := e.counter(t, "server.admission.shed"); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}

	close(release)
	<-started // B admitted once A's slot frees
	wg.Wait()

	// The shed campaign succeeds on retry once load clears.
	res, err := e.cl.SubmitWait(context.Background(), tinySpec(33), 10)
	if err != nil {
		t.Fatalf("retry after shed: %v", err)
	}
	if res.Source != "miss" {
		t.Fatalf("retry source %q, want miss", res.Source)
	}
}

// TestClientCancelReleasesSlot: a canceled request abandons its campaign,
// which cancels the execution and frees the tenant's slot for other work.
func TestClientCancelReleasesSlot(t *testing.T) {
	e := newEnv(t, func(c *server.Config) { c.TenantQuota = 1 })
	started, release := gated(e)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.cl.Submit(ctx, tinySpec(41))
		errc <- err
	}()
	<-started
	cancel() // the only waiter walks away mid-campaign
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled submit returned %v", err)
	}

	// The abandoned flight unwinds: its slot releases and the next campaign
	// for the same tenant is admitted.
	e.waitCounter(t, "server.campaigns.canceled", 1)
	close(release)
	done := make(chan struct{})
	go func() {
		if _, err := e.cl.SubmitWait(context.Background(), tinySpec(42), 20); err != nil {
			t.Errorf("post-cancel submit: %v", err)
		}
		close(done)
	}()
	<-started
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("slot never released after client cancel")
	}
	if got := e.counter(t, "store.writes"); got != 1 {
		t.Fatalf("store.writes = %d, want 1 (canceled campaign must not cache)", got)
	}
}

// TestStatusAndEvents: GET reports 404 → 202 (in flight) → 200 (cached),
// and the SSE stream carries started/point/done events.
func TestStatusAndEvents(t *testing.T) {
	e := newEnv(t, nil)
	started, release := gated(e)
	spec := tinySpec(51)
	key := spec.Normalize().Key()

	if _, ok, err := e.cl.Get(context.Background(), key); err != nil || ok {
		t.Fatalf("unsubmitted campaign: ok=%v err=%v, want miss", ok, err)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := e.cl.Submit(context.Background(), spec)
		errc <- err
	}()
	<-started

	// In flight: 202 with a progress body.
	resp, err := http.Get(e.hs.URL + "/v1/campaigns/" + key)
	if err != nil {
		t.Fatal(err)
	}
	var ev server.ProgressEvent
	json.NewDecoder(resp.Body).Decode(&ev)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || (ev.Type != "queued" && ev.Type != "started") {
		t.Fatalf("in-flight GET: %d %+v, want 202 with progress state", resp.StatusCode, ev)
	}

	// Subscribe, then let the campaign finish: the stream must deliver the
	// replayed state, every point, and the terminal done.
	evc := make(chan []server.ProgressEvent, 1)
	go func() {
		var got []server.ProgressEvent
		e.cl.Events(context.Background(), key, func(ev server.ProgressEvent) bool {
			got = append(got, ev)
			return ev.Type != "done" && ev.Type != "error"
		})
		evc <- got
	}()
	time.Sleep(50 * time.Millisecond) // let the subscription attach
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	var events []server.ProgressEvent
	select {
	case events = <-evc:
	case <-time.After(15 * time.Second):
		t.Fatal("SSE stream never terminated")
	}
	kinds := map[string]int{}
	for _, ev := range events {
		kinds[ev.Type]++
	}
	if kinds["done"] != 1 || kinds["point"] < 1 {
		t.Fatalf("SSE events %v: want >=1 point and exactly 1 done", kinds)
	}

	// Cached now: 200 with the stored body; a late subscriber gets a single
	// cached done event.
	if res, ok, err := e.cl.Get(context.Background(), key); err != nil || !ok || res.Source != "hit" {
		t.Fatalf("cached GET failed: ok=%v err=%v", ok, err)
	}
	var late []server.ProgressEvent
	if err := e.cl.Events(context.Background(), key, func(ev server.ProgressEvent) bool {
		late = append(late, ev)
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if len(late) != 1 || late[0].Type != "done" || !late[0].Cached {
		t.Fatalf("late subscriber events = %+v, want one cached done", late)
	}
}

// TestMetricsEndpoint: the /metrics text exposes runner.*, server.*, and
// store.* counters from the one shared registry.
func TestMetricsEndpoint(t *testing.T) {
	e := newEnv(t, nil)
	if _, err := e.cl.Submit(context.Background(), tinySpec(61)); err != nil {
		t.Fatal(err)
	}
	text, err := e.cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"server.requests", "server.campaigns.executed", "server.cache.misses",
		"runner.jobs.completed", "runner.checkpoint.writes",
		"store.writes", "server.tenant.t1.requests",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	// And a health check for completeness.
	resp, err := http.Get(e.hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	json.NewDecoder(resp.Body).Decode(&h)
	if resp.StatusCode != 200 || h["status"] != "ok" || h["draining"] != false {
		t.Fatalf("healthz: %d %v", resp.StatusCode, h)
	}
}

// TestPerRequestDeadline: a spec deadline expires mid-campaign, surfaces as
// 504 + Retry-After, checkpoints progress, and a later retry completes with
// bytes identical to an undisturbed run.
func TestPerRequestDeadline(t *testing.T) {
	dir := t.TempDir()
	golden := func() []byte {
		e := newEnv(t, nil)
		res, err := e.cl.Submit(context.Background(), tinySpec(71))
		if err != nil {
			t.Fatal(err)
		}
		return res.Body
	}()

	e := startEnv(t, filepath.Join(dir, "store"), filepath.Join(dir, "ckpt"), nil)
	block := make(chan struct{})
	var once sync.Once
	e.srv.SetTestGate(func(ctx context.Context, key string) error {
		// First attempt parks until its deadline kills it; retries pass.
		var parked bool
		once.Do(func() {
			parked = true
			<-ctx.Done()
			close(block)
		})
		if parked {
			return ctx.Err()
		}
		return nil
	})
	spec := tinySpec(71)
	spec.TimeoutMs = 100
	_, err := e.cl.Submit(context.Background(), spec)
	var re *client.RetryableError
	if !errors.As(err, &re) || re.Status != http.StatusGatewayTimeout {
		t.Fatalf("deadline submit: got %v, want 504", err)
	}
	<-block

	spec.TimeoutMs = 0
	res, err := e.cl.SubmitWait(context.Background(), spec, 10)
	if err != nil {
		t.Fatalf("retry after deadline: %v", err)
	}
	if !bytes.Equal(res.Body, golden) {
		t.Fatalf("deadline-interrupted campaign diverged from golden:\n%s\nvs\n%s", res.Body, golden)
	}
}

// TestDrainRejectsNewServesCached: a draining server refuses fresh work with
// 503 + Retry-After but keeps serving cache hits.
func TestDrainRejectsNewServesCached(t *testing.T) {
	e := newEnv(t, nil)
	first, err := e.cl.Submit(context.Background(), tinySpec(81))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if !e.srv.Draining() {
		t.Fatal("Draining() false after Drain")
	}

	hit, err := e.cl.Submit(context.Background(), tinySpec(81))
	if err != nil || hit.Source != "hit" || !bytes.Equal(hit.Body, first.Body) {
		t.Fatalf("cache hit during drain failed: %v %+v", err, hit)
	}
	_, err = e.cl.Submit(context.Background(), tinySpec(82))
	var re *client.RetryableError
	if !errors.As(err, &re) || re.Status != http.StatusServiceUnavailable || re.RetryAfter <= 0 {
		t.Fatalf("fresh work during drain: got %v, want 503 + Retry-After", err)
	}
	if got := e.counter(t, "server.drain.rejected"); got != 1 {
		t.Fatalf("drain.rejected = %d, want 1", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := server.New(server.Config{}); err == nil {
		t.Fatal("New accepted a nil store")
	}
	st, _, err := store.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.New(server.Config{Store: st}); err == nil {
		t.Fatal("New accepted an empty checkpoint dir")
	}
}
