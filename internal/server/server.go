// Package server is the campaign service: an HTTP/JSON front door that
// turns the deterministic simulator into a multi-tenant result service.
// Most traffic is a content-addressed cache hit (internal/store); identical
// in-flight requests collapse onto one execution (single-flight); fresh work
// passes a two-level admission controller (per-tenant quotas, bounded queue
// with 429 + Retry-After load shedding) and runs through internal/runner
// with fingerprint-keyed checkpoints, so a crash, drain, or client cancel
// loses at most the point in progress — a restarted server resumes the rest
// and, because campaigns are pure functions of their spec, serves bytes
// identical to an uninterrupted run.
//
// API (JSON unless noted):
//
//	POST /v1/campaigns            submit a CampaignSpec; responds with the
//	                              SweepResult JSON (X-Afterimage-Cache:
//	                              hit|miss|join|degraded, X-Afterimage-Key:
//	                              <sha256>)
//	GET  /v1/campaigns/{key}      fetch a cached result (200), in-flight
//	                              progress (202), or 404
//	GET  /v1/campaigns/{key}/events   SSE stream of ProgressEvents
//	POST /v1/store/scrub          run one store integrity-scrub pass now;
//	                              responds with the ScrubReport JSON
//	GET  /metrics                 text snapshot of the telemetry registry
//	                              (runner.* / server.* / store.* counters)
//	GET  /healthz                 liveness + drain state
//
// Disk faults degrade, they never fail a campaign: when the store cannot
// persist a computed result (full or failing disk, write-health breaker
// open), the result is still served with X-Afterimage-Cache: degraded — the
// cache write was shed, the bytes are identical to a cached run's.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"afterimage"
	"afterimage/internal/cluster"
	"afterimage/internal/obslog"
	"afterimage/internal/runner"
	"afterimage/internal/store"
	"afterimage/internal/telemetry"
	"afterimage/internal/vfs"
)

// Response headers.
const (
	// HeaderKey carries the campaign's content address on every result.
	HeaderKey = "X-Afterimage-Key"
	// HeaderCache reports how the result was produced: "hit" (store),
	// "miss" (this request executed the campaign), or "join" (deduplicated
	// onto another request's execution).
	HeaderCache = "X-Afterimage-Cache"
)

// Config assembles a Server.
type Config struct {
	// Store is the content-addressed result cache (required).
	Store *store.Store
	// CheckpointDir holds per-campaign runner checkpoints (required). It
	// must persist across restarts for drain/crash resume to work.
	CheckpointDir string
	// FS is the filesystem campaign checkpoints are written through; nil
	// means the real one (vfs.OS()). The disk-chaos harness injects faults
	// here; checkpoint write failures degrade to no-resume, never to a
	// failed campaign.
	FS vfs.FS
	// Registry receives runner.*, server.*, and store.* counters; nil
	// creates a private one.
	Registry *telemetry.Registry
	// MaxConcurrent bounds simultaneously executing campaigns (default 4).
	MaxConcurrent int
	// QueueDepth bounds campaigns waiting for an execution slot; beyond it
	// the server sheds with 429 + Retry-After (default 8).
	QueueDepth int
	// TenantQuota bounds one tenant's executing-or-queued campaigns;
	// exceeding it is an immediate 429 + Retry-After (default 2).
	TenantQuota int
	// PointWorkers is the runner worker count inside each campaign
	// (default 1; results are identical for any value).
	PointWorkers int
	// DefaultTimeout is the per-request execution deadline applied when a
	// spec carries no timeout_ms (0 = none). The deadline rides the flight
	// context into Lab.ArmCancel, so an expired campaign faults at the
	// next simulated operation, checkpoints, and returns 504.
	DefaultTimeout time.Duration
	// RetryAfter is the hint attached to 429/503 responses (default 2s).
	RetryAfter time.Duration
	// Logger receives structured request/campaign logs, stamped with each
	// campaign's correlation ID. nil disables logging (the nil *Logger is
	// safe to call).
	Logger *obslog.Logger
	// SpanLog, when set, receives one JSONL span record per completed
	// campaign (telemetry.SpanRecord lines; validate with
	// telemetry.ValidateSpanLog). Writes are serialised by the server.
	SpanLog io.Writer
	// TraceRetention bounds how many completed campaigns' span trees the
	// server keeps for GET /v1/campaigns/{key}/trace (default 256, FIFO).
	TraceRetention int
	// Cluster, when set, shards campaign execution across the worker pool:
	// cache misses dispatch through the coordinator (failover, hedging) and
	// degrade to this server's in-process path when no worker is
	// dispatchable. New installs the local path on the coordinator.
	Cluster *cluster.Coordinator
	// SSEKeepalive is the interval between ": keepalive" comment frames on
	// idle progress streams, so intermediaries don't sever quiet connections
	// and the server detects (and reaps) dead subscribers (default 15s;
	// negative disables).
	SSEKeepalive time.Duration
}

// Server handles the campaign API. Create with New, serve via Handler, stop
// via Drain.
type Server struct {
	cfg Config
	st  *store.Store
	fs  vfs.FS
	reg *telemetry.Registry

	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool
	wg         sync.WaitGroup // in-flight campaign executions

	fmu     sync.Mutex
	flights map[string]*flight

	admission *admission
	progress  *progressHub
	traces    *traceStore
	log       *obslog.Logger
	spanLogMu sync.Mutex

	requests, cacheHits, cacheMisses        *telemetry.Counter
	joined, executed                        *telemetry.Counter
	completed, failed, canceled, degraded   *telemetry.Counter
	validationRejected, drainRejected       *telemetry.Counter
	sseSubscribed, sseKeepalives, sseReaped *telemetry.Counter
	sseActive                               *telemetry.Gauge

	// Test seams: gate blocks inside runCampaign before simulation (its
	// error aborts the run); pointDone observes checkpoint writes.
	testGate      func(ctx context.Context, key string) error
	testPointDone func(key string, completed int)
}

// flight is one in-flight campaign execution that any number of identical
// requests wait on. The last waiter to leave cancels it — an abandoned
// campaign checkpoints and releases its slot instead of running for nobody.
type flight struct {
	key    string
	corr   string // correlation ID of the request that started the flight
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed after body/err are set

	body []byte
	err  *apiError
	// degraded marks a flight whose result could not be cached (the store
	// shed the write); waiters report X-Afterimage-Cache: degraded. Written
	// before done closes, read only after.
	degraded bool

	mu      sync.Mutex
	waiters int
}

// join registers another waiter.
func (f *flight) join() {
	f.mu.Lock()
	f.waiters++
	f.mu.Unlock()
}

// leave drops one waiter, canceling the execution when none remain.
func (f *flight) leave() {
	f.mu.Lock()
	f.waiters--
	if f.waiters <= 0 {
		f.cancel()
	}
	f.mu.Unlock()
}

// apiError is a failure with an HTTP shape.
type apiError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

// New builds a server over an opened store. The checkpoint directory is
// created if absent.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.Store is required")
	}
	if cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("server: Config.CheckpointDir is required")
	}
	if cfg.FS == nil {
		cfg.FS = vfs.OS()
	}
	if err := cfg.FS.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: create checkpoint dir: %w", err)
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.TenantQuota <= 0 {
		cfg.TenantQuota = 2
	}
	if cfg.PointWorkers <= 0 {
		cfg.PointWorkers = 1
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	if cfg.SSEKeepalive == 0 {
		cfg.SSEKeepalive = 15 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	reg := cfg.Registry
	s := &Server{
		cfg:        cfg,
		st:         cfg.Store,
		fs:         cfg.FS,
		reg:        reg,
		baseCtx:    ctx,
		baseCancel: cancel,
		flights:    make(map[string]*flight),
		admission:  newAdmission(cfg.MaxConcurrent, cfg.QueueDepth, cfg.TenantQuota, cfg.RetryAfter, reg),
		progress:   newProgressHub(),
		traces:     newTraceStore(cfg.TraceRetention),
		log:        cfg.Logger,

		requests:           reg.Counter("server.requests"),
		cacheHits:          reg.Counter("server.cache.hits"),
		cacheMisses:        reg.Counter("server.cache.misses"),
		joined:             reg.Counter("server.dedup.joined"),
		executed:           reg.Counter("server.campaigns.executed"),
		completed:          reg.Counter("server.campaigns.completed"),
		failed:             reg.Counter("server.campaigns.failed"),
		canceled:           reg.Counter("server.campaigns.canceled"),
		degraded:           reg.Counter("server.campaigns.degraded"),
		validationRejected: reg.Counter("server.requests.invalid"),
		drainRejected:      reg.Counter("server.drain.rejected"),
		sseSubscribed:      reg.Counter("server.sse.subscribed"),
		sseKeepalives:      reg.Counter("server.sse.keepalives"),
		sseReaped:          reg.Counter("server.sse.reaped"),
		sseActive:          reg.Gauge("server.sse.active"),
	}
	if cfg.Cluster != nil {
		// The coordinator's degradation path is this server's in-process
		// execution: zero healthy workers must never refuse a campaign the
		// service could have run alone.
		cfg.Cluster.SetLocal(func(ctx context.Context, key string, payload []byte) ([]byte, error) {
			var spec CampaignSpec
			if err := json.Unmarshal(payload, &spec); err != nil {
				return nil, fmt.Errorf("decode local job payload: %w", err)
			}
			body, _, _, err := s.executeLocal(ctx, key, spec.Normalize())
			return body, err
		})
	}
	return s, nil
}

// Registry exposes the server's metric registry (for tests and the binary).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Handler builds the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns/{key}", s.handleGet)
	mux.HandleFunc("GET /v1/campaigns/{key}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/campaigns/{key}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/store/scrub", s.handleScrub)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.Cluster != nil {
		mux.HandleFunc("POST "+cluster.RegisterPath, s.handleClusterRegister)
		mux.HandleFunc("GET /v1/cluster/workers", s.handleClusterWorkers)
	}
	return mux
}

// handleClusterRegister admits a worker into the pool. Workers re-POST on a
// timer, so registration is idempotent and doubles as the revival path.
func (s *Server) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	var req cluster.RegisterRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed register request: " + err.Error()})
		return
	}
	if err := s.cfg.Cluster.Register(req.ID, req.Addr); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "registered", "id": req.ID})
}

// handleClusterWorkers snapshots pool membership, health, and breaker states.
func (s *Server) handleClusterWorkers(w http.ResponseWriter, _ *http.Request) {
	s.requests.Inc()
	writeJSON(w, http.StatusOK, map[string]any{"workers": s.cfg.Cluster.Workers()})
}

// Drain stops the server gracefully: new executions are refused with 503 +
// Retry-After, every in-flight campaign is canceled — the runner checkpoints
// each completed point, so nothing finished is lost — and Drain waits for
// them to unwind (bounded by ctx). Cache hits keep being served throughout.
// A restarted server resumes the checkpointed campaigns on their next
// request.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.baseCancel()
	s.log.Info("drain started")
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("drain complete")
		return nil
	case <-ctx.Done():
		s.log.Warn("drain incomplete", obslog.F("err", ctx.Err()))
		return fmt.Errorf("server: drain incomplete: %w", ctx.Err())
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleSubmit is the main entry point: validate → cache → single-flight →
// admission → execute.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	// Correlation first: accepted from the client or minted, echoed on every
	// response (including errors), and threaded through the whole campaign.
	corr := requestCorrelation(r)
	w.Header().Set(HeaderCampaignID, corr)
	rctx := obslog.WithCorrelation(r.Context(), corr)
	rlog := s.log.Ctx(rctx)

	var spec CampaignSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.validationRejected.Inc()
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed campaign spec: " + err.Error()})
		return
	}
	spec = spec.Normalize()
	if !validTenant(spec.Tenant) {
		s.validationRejected.Inc()
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("invalid tenant %q: want 1..64 chars of [a-zA-Z0-9_-]", spec.Tenant),
		})
		return
	}
	if err := spec.Validate(); err != nil {
		s.validationRejected.Inc()
		writeValidationError(w, err)
		return
	}
	s.reg.Counter("server.tenant." + spec.Tenant + ".requests").Inc()
	key := spec.Key()

	// Cache first: hits cost one read and bypass admission entirely — they
	// are served even while draining.
	if body, ok := s.st.GetCtx(rctx, key); ok {
		s.cacheHits.Inc()
		rlog.Debug("cache hit", obslog.F("key", key), obslog.F("tenant", spec.Tenant))
		writeResult(w, key, "hit", body)
		return
	}
	s.cacheMisses.Inc()

	if s.draining.Load() {
		s.drainRejected.Inc()
		rlog.Warn("submit rejected: draining", obslog.F("key", key), obslog.F("tenant", spec.Tenant))
		writeAPIError(w, key, &apiError{Status: http.StatusServiceUnavailable,
			Msg: "server is draining", RetryAfter: s.cfg.RetryAfter})
		return
	}

	f, started := s.flightFor(key, spec, corr)
	if !started {
		s.joined.Inc()
		rlog.Debug("joined in-flight campaign", obslog.F("key", key),
			obslog.F("flight_corr", f.corr))
	}
	defer f.leave()

	select {
	case <-f.done:
	case <-r.Context().Done():
		// The client went away; leave() (deferred) releases our stake and
		// cancels the execution if we were the last. The checkpoint keeps
		// the completed points for the next request.
		return
	}
	if f.err != nil {
		writeAPIError(w, key, f.err)
		return
	}
	source := "miss"
	if !started {
		source = "join"
	}
	if f.degraded {
		// The result is correct and complete; only its cache write was shed.
		source = "degraded"
	}
	writeResult(w, key, source, f.body)
}

// handleScrub triggers one on-demand store integrity pass — the triage lever
// after a disk incident: verify everything now instead of waiting for the
// background cadence.
func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	rep := s.st.Scrub(r.Context())
	s.log.Ctx(r.Context()).Info("on-demand store scrub",
		obslog.F("scanned", rep.Scanned), obslog.F("corrupt", rep.Corrupt))
	writeJSON(w, http.StatusOK, rep)
}

// flightFor joins the in-flight execution for key or starts one. The flight
// keeps the correlation ID of the request that started it: joiners get their
// own IDs echoed on their responses, but the execution — and therefore the
// span tree — belongs to the starter's ID.
func (s *Server) flightFor(key string, spec CampaignSpec, corr string) (*flight, bool) {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if f, ok := s.flights[key]; ok {
		f.join()
		return f, false
	}
	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutMs > 0 {
		timeout = time.Duration(spec.TimeoutMs) * time.Millisecond
	}
	var fctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		fctx, cancel = context.WithTimeout(s.baseCtx, timeout)
	} else {
		fctx, cancel = context.WithCancel(s.baseCtx)
	}
	// The flight context carries the correlation ID below the HTTP layer:
	// admission, the store, the runner, and the per-point simulator labs all
	// see it via obslog.Correlation.
	fctx = obslog.WithCorrelation(fctx, corr)
	f := &flight{key: key, corr: corr, ctx: fctx, cancel: cancel, done: make(chan struct{}), waiters: 1}
	s.flights[key] = f
	// Pin the key for the flight's lifetime: the GC must not evict a result
	// between the moment the campaign writes it and the moment the last
	// waiter reads it back.
	s.st.Pin(key)
	s.wg.Add(1)
	go s.execute(f, spec)
	return f, true
}

// execute runs one flight to completion: admission, campaign, store.
func (s *Server) execute(f *flight, spec CampaignSpec) {
	defer s.wg.Done()
	defer func() {
		s.fmu.Lock()
		delete(s.flights, f.key)
		s.fmu.Unlock()
		f.cancel()
		close(f.done)
		s.st.Unpin(f.key)
	}()

	flog := s.log.Ctx(f.ctx)
	s.progress.publish(ProgressEvent{Type: "queued", Key: f.key, Total: len(spec.Intensities)})
	flog.Info("campaign queued", obslog.F("key", f.key), obslog.F("tenant", spec.Tenant),
		obslog.F("points", len(spec.Intensities)))
	release, aerr := s.admission.acquire(f.ctx, spec.Tenant)
	if aerr != nil {
		f.err = aerr
		flog.Warn("campaign rejected at admission", obslog.F("key", f.key),
			obslog.F("status", aerr.Status), obslog.F("err", aerr.Msg))
		s.progress.publish(ProgressEvent{Type: "error", Key: f.key, Err: aerr.Msg})
		return
	}
	defer release()
	flog.Info("campaign admitted", obslog.F("key", f.key))

	body, phases, degraded, err := s.runCampaign(f.ctx, f.key, spec)
	if err != nil {
		f.err = s.campaignError(f.ctx, err)
		flog.Warn("campaign failed", obslog.F("key", f.key),
			obslog.F("status", f.err.Status), obslog.F("err", err))
		s.progress.publish(ProgressEvent{Type: "error", Key: f.key, Err: f.err.Msg})
		return
	}
	flog.Info("campaign completed", obslog.F("key", f.key), obslog.F("bytes", len(body)),
		obslog.F("cache_degraded", degraded))
	f.body = body
	f.degraded = degraded
	if len(phases) > 0 {
		s.progress.publish(ProgressEvent{Type: "phases", Key: f.key, Phases: phases})
	}
	s.progress.publish(ProgressEvent{Type: "done", Key: f.key,
		Completed: len(spec.Intensities), Total: len(spec.Intensities)})
}

// runCampaign executes the sweep under the flight context — in-process, or,
// when a cluster coordinator is configured, dispatched across the worker
// pool — stores the result on success, and records the span tree. Campaigns
// are pure functions of their specs, so both paths produce byte-identical
// results; the dispatched path additionally records its failover audit trail
// as a "dispatch" stage in the spans.
// The returned degraded flag reports a shed cache write: the result is
// complete and correct, the store just could not persist it (see persistResult).
func (s *Server) runCampaign(ctx context.Context, key string, spec CampaignSpec) ([]byte, []afterimage.PhaseSummary, bool, error) {
	s.executed.Inc()
	if s.testGate != nil {
		if err := s.testGate(ctx, key); err != nil {
			return nil, nil, false, err
		}
	}
	total := len(spec.Intensities)
	s.progress.publish(ProgressEvent{Type: "started", Key: key, Total: total})

	if s.cfg.Cluster != nil {
		return s.runCampaignDispatched(ctx, key, spec)
	}

	body, res, phases, err := s.executeLocal(ctx, key, spec)
	if err != nil {
		return nil, nil, false, err
	}
	degraded := s.persistResult(ctx, key, body)
	s.completed.Inc()

	// The span tree is derived from the deterministic result, so a resumed
	// campaign reports the identical trace an uninterrupted run would have —
	// the byte-identity guarantee extends to observability.
	rec := buildCampaignSpans(obslog.Correlation(ctx), key, spec, res)
	s.traces.put(rec)
	s.appendSpanLog(rec)
	return body, phases, degraded, nil
}

// persistResult caches a computed campaign result, shedding the write — not
// the campaign — when the disk refuses it. A true return means degraded: the
// result was served uncached and the next identical request recomputes (and
// re-attempts the cache write, which is how the cache heals).
func (s *Server) persistResult(ctx context.Context, key string, body []byte) bool {
	err := s.st.PutCtx(ctx, key, body)
	if err == nil {
		return false
	}
	s.degraded.Inc()
	s.log.Ctx(ctx).Warn("result cache write shed; serving uncached result",
		obslog.F("key", key), obslog.F("err", err))
	return true
}

// executeLocal runs the sweep in-process with a fingerprint-keyed
// checkpoint and removes the now-redundant checkpoint on success. Resume is
// always on: if a previous run of this campaign was interrupted (crash,
// drain, client cancel), its completed points are loaded instead of
// re-simulated, and the final bytes equal an uninterrupted run's. It is
// both the non-cluster execution path and the cluster's degrade-to-local
// fallback.
func (s *Server) executeLocal(ctx context.Context, key string, spec CampaignSpec) ([]byte, afterimage.SweepResult, []afterimage.PhaseSummary, error) {
	total := len(spec.Intensities)
	lab, err := afterimage.NewLabE(spec.labOptions())
	if err != nil {
		return nil, afterimage.SweepResult{}, nil, err
	}
	// The deadline/cancel wiring below the runner: each sweep point's job
	// context descends from ctx, and runSweepPoint arms the simulator
	// watchdog with it (Lab.ArmCancel), so cancellation and deadlines
	// surface as typed FaultBudget faults at the next simulated operation.
	so := spec.sweepOptions()
	ckpt := s.checkpointPath(key)
	so.Runner = runner.Options{
		Workers:        s.cfg.PointWorkers,
		Metrics:        s.reg,
		Logger:         s.log,
		CheckpointPath: ckpt,
		FS:             s.fs,
		Resume:         true,
		OnCheckpoint: func(completed int) {
			s.progress.publish(ProgressEvent{Type: "point", Key: key, Completed: completed, Total: total})
			if s.testPointDone != nil {
				s.testPointDone(key, completed)
			}
		},
	}
	res, err := lab.RunFaultSweepCtx(ctx, so)
	if err != nil {
		return nil, afterimage.SweepResult{}, nil, err
	}
	body, err := res.JSON()
	if err != nil {
		return nil, afterimage.SweepResult{}, nil, fmt.Errorf("encode result: %w", err)
	}
	s.fs.Remove(ckpt) // the stored result supersedes it; best-effort
	return body, res, lab.PhaseSummaries(), nil
}

// runCampaignDispatched routes the campaign through the cluster coordinator:
// rendezvous-sharded worker dispatch with failover and hedging, degrading to
// executeLocal when no worker is dispatchable. The worker's bytes are stored
// verbatim — they are identical to what the local path would produce — and
// the dispatch attempts ride into the span tree so traces show which worker
// ran each attempt and why failovers happened.
func (s *Server) runCampaignDispatched(ctx context.Context, key string, spec CampaignSpec) ([]byte, []afterimage.PhaseSummary, bool, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, nil, false, fmt.Errorf("encode campaign spec: %w", err)
	}
	dres, err := s.cfg.Cluster.Dispatch(ctx, key, payload)
	if err != nil {
		return nil, nil, false, err
	}
	var res afterimage.SweepResult
	if err := json.Unmarshal(dres.Body, &res); err != nil {
		return nil, nil, false, fmt.Errorf("decode dispatched result: %w", err)
	}
	degraded := s.persistResult(ctx, key, dres.Body)
	s.completed.Inc()
	s.log.Ctx(ctx).Info("campaign dispatched", obslog.F("key", key),
		obslog.F("mode", dres.Mode), obslog.F("worker", dres.Worker),
		obslog.F("attempts", len(dres.Attempts)))

	rec := buildCampaignSpansDispatch(obslog.Correlation(ctx), key, spec, res, dres.Attempts)
	s.traces.put(rec)
	s.appendSpanLog(rec)
	return dres.Body, nil, degraded, nil
}

func (s *Server) checkpointPath(key string) string {
	return filepath.Join(s.cfg.CheckpointDir, key+".ckpt")
}

// campaignError maps an execution failure onto an HTTP shape. Cancellation
// and deadlines are retryable by design: progress is checkpointed, so a
// retry resumes rather than restarts.
func (s *Server) campaignError(ctx context.Context, err error) *apiError {
	switch {
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.canceled.Inc()
		return &apiError{Status: http.StatusGatewayTimeout,
			Msg:        "campaign deadline exceeded; completed points are checkpointed — retry to resume",
			RetryAfter: s.cfg.RetryAfter}
	case ctx.Err() != nil:
		s.canceled.Inc()
		return &apiError{Status: http.StatusServiceUnavailable,
			Msg:        "campaign canceled (drain or client gone); completed points are checkpointed — retry to resume",
			RetryAfter: s.cfg.RetryAfter}
	default:
		s.failed.Inc()
		return &apiError{Status: http.StatusInternalServerError, Msg: err.Error()}
	}
}

// handleGet serves a cached result, in-flight progress (202), or 404.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed campaign key"})
		return
	}
	if body, ok := s.st.Get(key); ok {
		s.cacheHits.Inc()
		writeResult(w, key, "hit", body)
		return
	}
	if ev, ok := s.progress.state(key); ok {
		w.Header().Set(HeaderKey, key)
		writeJSON(w, http.StatusAccepted, ev)
		return
	}
	writeJSON(w, http.StatusNotFound, map[string]string{"error": "campaign not cached and not in flight"})
}

// handleEvents streams ProgressEvents for one campaign as server-sent
// events. A subscriber to an already-cached campaign receives a single
// terminal done event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed campaign key"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set(HeaderKey, key)
	w.WriteHeader(http.StatusOK)

	writeSSE := func(ev ProgressEvent) bool {
		raw, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", raw); err != nil {
			return false
		}
		flusher.Flush()
		return ev.Type != "done" && ev.Type != "error"
	}

	if _, ok := s.st.Get(key); ok {
		writeSSE(ProgressEvent{Type: "done", Key: key, Cached: true})
		return
	}
	ch, cancel := s.progress.subscribe(key)
	defer cancel()
	s.sseSubscribed.Inc()
	s.sseActive.Add(1)
	defer s.sseActive.Add(-1)
	// The store may have gained the entry between the check and the
	// subscription; re-check so a race cannot strand the subscriber.
	if _, ok := s.st.Get(key); ok {
		writeSSE(ProgressEvent{Type: "done", Key: key, Cached: true})
		return
	}
	// Periodic comment frames keep idle streams alive through buffering
	// intermediaries and — because a dead subscriber's write fails — bound
	// how long a vanished client can hold its subscription slot.
	var keepalive <-chan time.Time
	if s.cfg.SSEKeepalive > 0 {
		t := time.NewTicker(s.cfg.SSEKeepalive)
		defer t.Stop()
		keepalive = t.C
	}
	for {
		select {
		case ev := <-ch:
			if !writeSSE(ev) {
				if ev.Type != "done" && ev.Type != "error" {
					s.sseReaped.Inc()
				}
				return
			}
		case <-keepalive:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				s.sseReaped.Inc()
				return
			}
			flusher.Flush()
			s.sseKeepalives.Inc()
		case <-r.Context().Done():
			return
		}
	}
}

// handleMetrics renders the registry snapshot. The default is the legacy
// sorted "name value" text (byte-identical to what it always was); a scraper
// that asks for Prometheus — Accept: text/plain; version=0.0.4 (or an
// OpenMetrics type), or ?format=prometheus — gets the 0.0.4 text exposition
// with HELP/TYPE metadata, per-tenant counters as a tenant label, and the
// latency histograms as cumulative _bucket series.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeMetricsSnapshot(w, r, s.reg)
}

// writeMetricsSnapshot renders one registry under the /metrics content
// negotiation — shared by the server and the worker so both expose identical
// formats.
func writeMetricsSnapshot(w http.ResponseWriter, r *http.Request, reg *telemetry.Registry) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", telemetry.PrometheusContentType)
		telemetry.WritePrometheus(w, reg.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, reg.Snapshot().String())
}

// wantsPrometheus is the /metrics content negotiation: an explicit
// ?format=prometheus wins, otherwise the Accept header decides (the version
// token Prometheus scrapers send, or an OpenMetrics media type).
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "legacy":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "version=0.0.4") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// handleHealthz is the load-balancer probe: 200 while serving, 503 once
// Drain has begun so replicas fall out of rotation before the listener
// closes. The body always carries the drain state either way.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":   "draining",
			"draining": true,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": false,
	})
}

// validTenant bounds tenant names so they are safe as metric-name segments.
func validTenant(t string) bool {
	if len(t) == 0 || len(t) > 64 {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

func writeResult(w http.ResponseWriter, key, source string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderKey, key)
	w.Header().Set(HeaderCache, source)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func writeAPIError(w http.ResponseWriter, key string, e *apiError) {
	if key != "" {
		w.Header().Set(HeaderKey, key)
	}
	if e.RetryAfter > 0 {
		secs := int64((e.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, e.Status, map[string]string{"error": e.Msg})
}

// writeValidationError renders a typed *OptionError structurally (struct,
// field, constraint) so clients can point at the offending spec field; other
// validation failures fall back to the plain error shape.
func writeValidationError(w http.ResponseWriter, err error) {
	var oe *afterimage.OptionError
	if errors.As(err, &oe) {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error":      oe.Error(),
			"struct":     oe.Struct,
			"field":      oe.Field,
			"value":      fmt.Sprint(oe.Value),
			"constraint": oe.Constraint,
		})
		return
	}
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	raw, err := json.Marshal(v)
	if err != nil {
		fmt.Fprintf(w, `{"error": %q}`, "encode response: "+err.Error())
		return
	}
	w.Write(raw)
	if !strings.HasSuffix(string(raw), "\n") {
		w.Write([]byte("\n"))
	}
}
