package server_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"afterimage/internal/client"
	"afterimage/internal/runner"
	"afterimage/internal/server"
	"afterimage/internal/store"
)

// entryPath locates a campaign's store entry on disk (the store shards by
// the first key byte).
func entryPath(storeDir, key string) string {
	return filepath.Join(storeDir, key[:2], key+".entry")
}

// TestRestartServesCachedBytes: results survive an abrupt restart — a new
// server over the same store directory serves the same bytes as a hit,
// without re-executing.
func TestRestartServesCachedBytes(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	ckptDir := filepath.Join(dir, "ckpt")

	e1 := startEnv(t, storeDir, ckptDir, nil)
	first, err := e1.cl.Submit(context.Background(), tinySpec(101))
	if err != nil {
		t.Fatal(err)
	}
	e1.hs.Close() // "crash": no drain, no shutdown ceremony

	e2 := startEnv(t, storeDir, ckptDir, nil)
	second, err := e2.cl.Submit(context.Background(), tinySpec(101))
	if err != nil {
		t.Fatal(err)
	}
	if second.Source != "hit" || !bytes.Equal(first.Body, second.Body) {
		t.Fatalf("post-restart result: source=%s identical=%v",
			second.Source, bytes.Equal(first.Body, second.Body))
	}
	if got := e2.counter(t, "server.campaigns.executed"); got != 0 {
		t.Fatalf("restarted server re-executed a cached campaign (%d)", got)
	}
}

// TestCorruptEntryRecomputedIdentically: a store entry damaged while the
// server was down is quarantined by the restart recovery scan, and the next
// request transparently recomputes a byte-identical result.
func TestCorruptEntryRecomputedIdentically(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	ckptDir := filepath.Join(dir, "ckpt")

	e1 := startEnv(t, storeDir, ckptDir, nil)
	first, err := e1.cl.Submit(context.Background(), tinySpec(111))
	if err != nil {
		t.Fatal(err)
	}
	e1.hs.Close()

	// Tear the entry: keep the header but truncate the payload, the shape a
	// crash mid-write or disk fault leaves behind.
	path := entryPath(storeDir, first.Key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := startEnv(t, storeDir, ckptDir, nil)
	if got := e2.counter(t, "store.recovery.quarantined"); got != 1 {
		t.Fatalf("recovery scan quarantined %d files, want 1", got)
	}
	again, err := e2.cl.Submit(context.Background(), tinySpec(111))
	if err != nil {
		t.Fatal(err)
	}
	if again.Source != "miss" {
		t.Fatalf("damaged entry served as %q, want recompute (miss)", again.Source)
	}
	if !bytes.Equal(first.Body, again.Body) {
		t.Fatalf("recomputed result differs from the original:\n%s\nvs\n%s", first.Body, again.Body)
	}
}

// TestDrainCheckpointsAndRestartResumes is the graceful-shutdown
// end-to-end: SIGTERM-style Drain mid-campaign cancels the run after some
// points completed, the interrupted request gets a retryable 503, the
// checkpoint survives on disk, and a restarted server resumes the campaign
// from it — completing only the missing points and producing bytes identical
// to a never-interrupted run.
func TestDrainCheckpointsAndRestartResumes(t *testing.T) {
	spec := tinySpec(121)
	spec.Intensities = []float64{0, 1, 2, 3} // enough points to interrupt between
	key := spec.Normalize().Key()

	// Golden: the same campaign, undisturbed.
	golden := func() []byte {
		e := newEnv(t, nil)
		res, err := e.cl.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.Body
	}()

	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	ckptDir := filepath.Join(dir, "ckpt")
	e1 := startEnv(t, storeDir, ckptDir, nil)

	// Drain the server as soon as the first point checkpoints.
	var drainOnce sync.Once
	drained := make(chan struct{})
	e1.srv.SetTestPointDone(func(k string, completed int) {
		if k != key || completed < 1 {
			return
		}
		drainOnce.Do(func() {
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
				defer cancel()
				if err := e1.srv.Drain(ctx); err != nil {
					t.Errorf("drain: %v", err)
				}
				close(drained)
			}()
		})
	})

	_, err := e1.cl.Submit(context.Background(), spec)
	var re *client.RetryableError
	if !errors.As(err, &re) || re.Status != http.StatusServiceUnavailable {
		t.Fatalf("drained submit: got %v, want 503", err)
	}
	select {
	case <-drained:
	case <-time.After(15 * time.Second):
		t.Fatal("drain never completed")
	}
	if got := e1.counter(t, "server.campaigns.canceled"); got != 1 {
		t.Fatalf("campaigns.canceled = %d, want 1", got)
	}

	// The interrupted campaign's progress is on disk.
	ckpt := filepath.Join(ckptDir, key+".ckpt")
	keys, err := runnerCompletedKeys(ckpt)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	if len(keys) < 1 || len(keys) >= len(spec.Intensities) {
		t.Fatalf("checkpoint holds %d completed points, want 1..%d",
			len(keys), len(spec.Intensities)-1)
	}
	e1.hs.Close()

	// Restart over the same directories: the next request resumes the
	// checkpointed points instead of re-simulating them.
	e2 := startEnv(t, storeDir, ckptDir, nil)
	res, err := e2.cl.SubmitWait(context.Background(), spec, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "miss" {
		t.Fatalf("resumed campaign source %q, want miss", res.Source)
	}
	if got := e2.counter(t, "runner.jobs.resumed"); got < 1 {
		t.Fatalf("runner.jobs.resumed = %d, want >= 1 (campaign restarted from scratch)", got)
	}
	if !bytes.Equal(res.Body, golden) {
		t.Fatalf("drain-interrupted campaign diverged from uninterrupted run:\n%s\nvs\n%s", res.Body, golden)
	}
	// The completed campaign's checkpoint is superseded and removed.
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint not cleaned up after completion: %v", err)
	}
}

// TestRestartAfterTornCheckpoint: a checkpoint file torn at the moment of a
// crash must not wedge the campaign — the runner treats unparseable trailing
// state conservatively and the campaign still completes byte-identically.
func TestRestartAfterTornCheckpoint(t *testing.T) {
	spec := tinySpec(131)
	spec.Intensities = []float64{0, 1, 2}
	key := spec.Normalize().Key()

	golden := func() []byte {
		e := newEnv(t, nil)
		res, err := e.cl.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.Body
	}()

	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	ckptDir := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Plant a torn checkpoint: half a JSON line, as a crash mid-write (without
	// the fsync'd rename) would leave.
	ckpt := filepath.Join(ckptDir, key+".ckpt")
	if err := os.WriteFile(ckpt, []byte(`{"key":"sweep/v1-thread/0/0","va`), 0o644); err != nil {
		t.Fatal(err)
	}

	e := startEnv(t, storeDir, ckptDir, nil)
	res, err := e.cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("campaign with torn checkpoint: %v", err)
	}
	if !bytes.Equal(res.Body, golden) {
		t.Fatalf("torn checkpoint corrupted the campaign:\n%s\nvs\n%s", res.Body, golden)
	}
	// The damaged file was quarantined for forensics, not deleted.
	if _, err := os.Stat(ckpt + ".corrupt"); err != nil {
		t.Fatalf("torn checkpoint not quarantined: %v", err)
	}
}

// runnerCompletedKeys reads a runner checkpoint's completed-job keys.
func runnerCompletedKeys(path string) ([]string, error) {
	return runner.CompletedKeys(path)
}

// TestStoreDirSurvivesServerChurn: several sequential server generations
// over one store accumulate a consistent cache — every generation serves
// prior generations' results as hits.
func TestStoreDirSurvivesServerChurn(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	ckptDir := filepath.Join(dir, "ckpt")

	bodies := map[int64][]byte{}
	for gen := 0; gen < 3; gen++ {
		e := startEnv(t, storeDir, ckptDir, nil)
		for seed := int64(140); seed < 143; seed++ {
			res, err := e.cl.Submit(context.Background(), tinySpec(seed))
			if err != nil {
				t.Fatalf("gen %d seed %d: %v", gen, seed, err)
			}
			if prev, ok := bodies[seed]; ok {
				if res.Source != "hit" {
					t.Fatalf("gen %d seed %d: source %q, want hit", gen, seed, res.Source)
				}
				if !bytes.Equal(prev, res.Body) {
					t.Fatalf("gen %d seed %d: bytes diverged across restarts", gen, seed)
				}
			} else {
				bodies[seed] = res.Body
			}
		}
		if gen > 0 {
			if got := e.counter(t, "server.campaigns.executed"); got != 0 {
				t.Fatalf("gen %d re-executed %d cached campaigns", gen, got)
			}
		}
		e.hs.Close()
	}
	// Final sanity: the store holds exactly the three distinct campaigns.
	st, _, err := store.Open(storeDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 3 {
		t.Fatalf("store holds %d entries, want 3", st.Len())
	}
	_ = server.SpecSchema // anchor: bumping the schema invalidates this cache
}
