package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"afterimage/internal/client"
	"afterimage/internal/server"
	"afterimage/internal/telemetry"
)

// decodeTrace parses one span-log line as served by /v1/campaigns/{key}/trace.
func decodeTrace(t *testing.T, raw []byte) telemetry.SpanRecord {
	t.Helper()
	var rec telemetry.SpanRecord
	if err := json.Unmarshal(bytes.TrimSpace(raw), &rec); err != nil {
		t.Fatalf("decode trace: %v\n%s", err, raw)
	}
	return rec
}

// TestCorrelationPropagatesToTrace: a client-supplied X-Campaign-Id is
// echoed on the response and comes back as the correlation ID of one
// connected, schema-valid span tree — campaign → stages → jobs → attempts →
// phases.
func TestCorrelationPropagatesToTrace(t *testing.T) {
	e := newEnv(t, nil)
	e.cl.Correlation = "trace-e2e.1"
	spec := tinySpec(201)
	res, err := e.cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.CorrelationID != "trace-e2e.1" {
		t.Fatalf("response correlation %q, want the client's own", res.CorrelationID)
	}

	raw, ok, err := e.cl.Trace(context.Background(), res.Key)
	if err != nil || !ok {
		t.Fatalf("trace fetch: ok=%v err=%v", ok, err)
	}
	if n, err := telemetry.ValidateSpanLog(bytes.NewReader(raw)); err != nil || n != 1 {
		t.Fatalf("trace is not a valid 1-record span log: n=%d err=%v", n, err)
	}
	rec := decodeTrace(t, raw)
	if rec.CorrelationID != "trace-e2e.1" || rec.Key != res.Key {
		t.Fatalf("trace identity: corr=%q key=%q", rec.CorrelationID, rec.Key)
	}

	// The tree is connected and complete: three stages, one job per
	// intensity under flight, each with a final attempt carrying phases.
	root := rec.Span
	if root.Kind != telemetry.SpanKindCampaign || len(root.Children) != 3 {
		t.Fatalf("root: kind=%s children=%d", root.Kind, len(root.Children))
	}
	flight := root.Children[2]
	if flight.Name != "flight" || len(flight.Children) != len(spec.Intensities) {
		t.Fatalf("flight stage has %d jobs, want %d", len(flight.Children), len(spec.Intensities))
	}
	for _, job := range flight.Children {
		if job.Kind != telemetry.SpanKindJob || len(job.Children) == 0 {
			t.Fatalf("job %q: kind=%s attempts=%d", job.Name, job.Kind, len(job.Children))
		}
		final := job.Children[len(job.Children)-1]
		if final.Kind != telemetry.SpanKindAttempt || len(final.Children) == 0 {
			t.Fatalf("job %q final attempt has no phase spans", job.Name)
		}
		for _, ph := range final.Children {
			if ph.Kind != telemetry.SpanKindPhase {
				t.Fatalf("attempt child %q kind %s", ph.Name, ph.Kind)
			}
		}
	}
}

// TestMintedCorrelation: a submit without X-Campaign-Id (or with a malformed
// one) gets a server-minted ID, echoed and attached to the trace.
func TestMintedCorrelation(t *testing.T) {
	e := newEnv(t, nil)
	res, err := e.cl.Submit(context.Background(), tinySpec(211))
	if err != nil {
		t.Fatal(err)
	}
	if res.CorrelationID == "" {
		t.Fatal("server minted no correlation ID")
	}
	raw, ok, err := e.cl.Trace(context.Background(), res.Key)
	if err != nil || !ok {
		t.Fatalf("trace fetch: ok=%v err=%v", ok, err)
	}
	if rec := decodeTrace(t, raw); rec.CorrelationID != res.CorrelationID {
		t.Fatalf("trace corr %q != echoed %q", rec.CorrelationID, res.CorrelationID)
	}

	// Malformed header: treated as absent, minted instead — never a 4xx.
	spec := tinySpec(212)
	body, _ := json.Marshal(spec)
	req, _ := http.NewRequest(http.MethodPost, e.hs.URL+"/v1/campaigns", bytes.NewReader(body))
	req.Header.Set(server.HeaderCampaignID, "spaces are invalid")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	minted := resp.Header.Get(server.HeaderCampaignID)
	if resp.StatusCode != http.StatusOK || minted == "" || minted == "spaces are invalid" {
		t.Fatalf("malformed corr header: status=%d echoed=%q", resp.StatusCode, minted)
	}
}

// TestTraceChromeExport: ?format=chrome serves the span tree as a Chrome
// trace_event file that passes the same validator the CLI trace files do.
func TestTraceChromeExport(t *testing.T) {
	e := newEnv(t, nil)
	res, err := e.cl.Submit(context.Background(), tinySpec(221))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(e.hs.URL + "/v1/campaigns/" + res.Key + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome trace: %d", resp.StatusCode)
	}
	if n, err := telemetry.ValidateChromeTrace(resp.Body); err != nil || n == 0 {
		t.Fatalf("chrome trace invalid: n=%d err=%v", n, err)
	}
}

// TestTraceNotFound: unknown keys 404 (valid shape), malformed keys 400.
func TestTraceNotFound(t *testing.T) {
	e := newEnv(t, nil)
	if _, ok, err := e.cl.Trace(context.Background(), strings.Repeat("ab", 32)); err != nil || ok {
		t.Fatalf("unknown key: ok=%v err=%v", ok, err)
	}
	resp, err := http.Get(e.hs.URL + "/v1/campaigns/nothex/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key: %d, want 400", resp.StatusCode)
	}
}

// TestSpanLogWriter: a configured span log receives one validator-clean
// JSONL record per completed campaign.
func TestSpanLogWriter(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	e := newEnv(t, func(c *server.Config) {
		c.SpanLog = writerFunc(func(p []byte) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			return buf.Write(p)
		})
	})
	for seed := int64(231); seed < 234; seed++ {
		if _, err := e.cl.Submit(context.Background(), tinySpec(seed)); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	log := append([]byte(nil), buf.Bytes()...)
	mu.Unlock()
	n, err := telemetry.ValidateSpanLog(bytes.NewReader(log))
	if err != nil {
		t.Fatalf("span log invalid: %v\n%s", err, log)
	}
	if n != 3 {
		t.Fatalf("span log has %d records, want 3", n)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestTraceByteStableAcrossDrainRestartResume is the observability
// counterpart of the drain/resume byte-identity guarantee: a campaign
// interrupted by Drain and completed by a restarted server reports the
// byte-identical span record an uninterrupted run produces — same
// correlation ID, same tree, same cycles.
func TestTraceByteStableAcrossDrainRestartResume(t *testing.T) {
	const corr = "stability-corr-7"
	spec := tinySpec(241)
	spec.Intensities = []float64{0, 1, 2, 3}
	key := spec.Normalize().Key()

	// Golden: the same campaign and correlation ID, undisturbed.
	golden := func() []byte {
		e := newEnv(t, nil)
		e.cl.Correlation = corr
		if _, err := e.cl.Submit(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
		raw, ok, err := e.cl.Trace(context.Background(), key)
		if err != nil || !ok {
			t.Fatalf("golden trace: ok=%v err=%v", ok, err)
		}
		return raw
	}()

	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	ckptDir := filepath.Join(dir, "ckpt")
	e1 := startEnv(t, storeDir, ckptDir, nil)
	e1.cl.Correlation = corr

	var drainOnce sync.Once
	drained := make(chan struct{})
	e1.srv.SetTestPointDone(func(k string, completed int) {
		if k != key || completed < 1 {
			return
		}
		drainOnce.Do(func() {
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
				defer cancel()
				if err := e1.srv.Drain(ctx); err != nil {
					t.Errorf("drain: %v", err)
				}
				close(drained)
			}()
		})
	})
	_, err := e1.cl.Submit(context.Background(), spec)
	var re *client.RetryableError
	if !errors.As(err, &re) || re.Status != http.StatusServiceUnavailable {
		t.Fatalf("drained submit: got %v, want 503", err)
	}
	select {
	case <-drained:
	case <-time.After(15 * time.Second):
		t.Fatal("drain never completed")
	}
	e1.hs.Close()

	// Restart, resume, and compare the trace bytes.
	e2 := startEnv(t, storeDir, ckptDir, nil)
	e2.cl.Correlation = corr
	if _, err := e2.cl.SubmitWait(context.Background(), spec, 10); err != nil {
		t.Fatal(err)
	}
	if got := e2.counter(t, "runner.jobs.resumed"); got < 1 {
		t.Fatalf("runner.jobs.resumed = %d, want >= 1", got)
	}
	resumed, ok, err := e2.cl.Trace(context.Background(), key)
	if err != nil || !ok {
		t.Fatalf("resumed trace: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(resumed, golden) {
		t.Fatalf("resumed span record diverged from uninterrupted run:\n%s\nvs\n%s", resumed, golden)
	}
}

// TestHealthzDraining: once Drain begins, /healthz flips to 503 with
// draining:true so load balancers pull the replica.
func TestHealthzDraining(t *testing.T) {
	e := newEnv(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(e.hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	json.NewDecoder(resp.Body).Decode(&h)
	if resp.StatusCode != http.StatusServiceUnavailable || h["draining"] != true {
		t.Fatalf("draining healthz: %d %v, want 503 draining:true", resp.StatusCode, h)
	}
}

// TestMetricsContentNegotiation: the default /metrics stays byte-identical
// to the legacy format; a Prometheus Accept header (or ?format=prometheus)
// switches to validator-clean 0.0.4 exposition with the per-stage latency
// histograms and tenant labels.
func TestMetricsContentNegotiation(t *testing.T) {
	e := newEnv(t, nil)
	if _, err := e.cl.Submit(context.Background(), tinySpec(251)); err != nil {
		t.Fatal(err)
	}

	// Legacy default: exactly the registry snapshot's rendering.
	legacy, err := e.cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := e.reg.Snapshot().String(); legacy != want {
		t.Fatalf("legacy /metrics is not the snapshot rendering:\n%q\nvs\n%q", legacy, want)
	}
	if strings.Contains(legacy, "# TYPE") {
		t.Fatal("legacy /metrics grew Prometheus metadata")
	}

	// Prometheus via Accept negotiation.
	prom, err := e.cl.Prometheus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ValidatePrometheus(strings.NewReader(prom)); err != nil {
		t.Fatalf("prometheus exposition invalid: %v\n%s", err, prom)
	}
	for _, want := range []string{
		"# TYPE afterimage_server_requests_total counter",
		`afterimage_server_tenant_requests_total{tenant="t1"}`,
		"# TYPE afterimage_server_queue_wait_us histogram",
		`afterimage_server_queue_wait_us_bucket{le="+Inf"}`,
		"# TYPE afterimage_store_write_us histogram",
		"# TYPE afterimage_store_read_us histogram",
		"# TYPE afterimage_runner_attempt_us histogram",
		"# TYPE afterimage_sim_phase_train_cycles histogram",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	// Explicit ?format=prometheus, and the content type both ways.
	resp, err := http.Get(e.hs.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PrometheusContentType {
		t.Fatalf("prometheus content type %q", ct)
	}
	if _, err := telemetry.ValidatePrometheus(resp.Body); err != nil {
		t.Fatalf("?format=prometheus invalid: %v", err)
	}
}
