package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"afterimage/internal/client"
	"afterimage/internal/server"
	"afterimage/internal/store"
	"afterimage/internal/telemetry"
	"afterimage/internal/vfs"
)

// startDegradeEnv boots a service whose store runs over the given vfs.FS
// with a fast-recovering write-health breaker — the harness for every
// shed-the-cache-write test below.
func startDegradeEnv(t *testing.T, storeFS vfs.FS, mut func(*server.Config)) *env {
	t.Helper()
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	ckptDir := filepath.Join(dir, "ckpt")
	reg := telemetry.NewRegistry()
	st, _, err := store.OpenWith(store.Options{
		Dir: storeDir, Registry: reg, FS: storeFS,
		BreakerThreshold: 2, BreakerCooldown: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(st.Close)
	cfg := server.Config{
		Store:         st,
		CheckpointDir: ckptDir,
		Registry:      reg,
		RetryAfter:    time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return &env{srv: srv, hs: hs, cl: client.New(hs.URL), reg: reg, st: st,
		storeDir: storeDir, ckptDir: ckptDir}
}

// TestCampaignServedWhenStoreWritesFail: with every store write failing, a
// submitted campaign still returns 200 with bytes identical to a healthy
// run's — the response is marked degraded and the shed write is counted.
func TestCampaignServedWhenStoreWritesFail(t *testing.T) {
	spec := tinySpec(41)

	// Golden bytes from a healthy service.
	clean := newEnv(t, nil)
	golden, err := clean.cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	fsys := vfs.NewFaultFS(vfs.FaultConfig{Seed: 13, EIORate: 1}, nil)
	e := startDegradeEnv(t, fsys, nil)
	res, err := e.cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("campaign failed under store-write faults: %v", err)
	}
	if res.Source != "degraded" {
		t.Fatalf("Source = %q, want degraded", res.Source)
	}
	if !bytes.Equal(res.Body, golden.Body) {
		t.Fatal("degraded response bytes differ from a healthy run")
	}
	if v := e.counter(t, "server.campaigns.degraded"); v != 1 {
		t.Fatalf("server.campaigns.degraded = %d, want 1", v)
	}
	if v := e.counter(t, "store.degraded.writes"); v == 0 {
		t.Fatal("store.degraded.writes = 0, want > 0")
	}
	// Nothing was cached: the next submission recomputes (and is degraded
	// again — by now via the open breaker's fast path).
	res2, err := e.cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Source != "degraded" {
		t.Fatalf("second Source = %q, want degraded", res2.Source)
	}
	if !bytes.Equal(res2.Body, golden.Body) {
		t.Fatal("second degraded response bytes differ from a healthy run")
	}

	// Heal the disk; once the breaker's cooldown passes, the cache resumes:
	// one more miss that persists, then a genuine hit.
	fsys.SetEnabled(false)
	time.Sleep(50 * time.Millisecond)
	res3, err := e.cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Source != "miss" {
		t.Fatalf("post-heal Source = %q, want miss", res3.Source)
	}
	res4, err := e.cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res4.Source != "hit" {
		t.Fatalf("post-heal second Source = %q, want hit", res4.Source)
	}
	if !bytes.Equal(res4.Body, golden.Body) {
		t.Fatal("cached post-heal bytes differ from a healthy run")
	}
}

// TestCheckpointFaultsDontFailCampaigns: a checkpoint directory on a failing
// disk costs resumability, not results — the campaign completes as a normal
// miss and the degradation is visible in runner.checkpoint.degraded.
func TestCheckpointFaultsDontFailCampaigns(t *testing.T) {
	e := newEnv(t, func(cfg *server.Config) {
		cfg.FS = vfs.NewFaultFS(vfs.FaultConfig{Seed: 17, EIORate: 1}, nil)
	})
	res, err := e.cl.Submit(context.Background(), tinySpec(42))
	if err != nil {
		t.Fatalf("campaign failed under checkpoint faults: %v", err)
	}
	if res.Source != "miss" {
		t.Fatalf("Source = %q, want miss (store is healthy)", res.Source)
	}
	if v := e.counter(t, "runner.checkpoint.degraded"); v == 0 {
		t.Fatal("runner.checkpoint.degraded = 0, want > 0")
	}
	// The result is cached despite the checkpoint loss.
	res2, err := e.cl.Submit(context.Background(), tinySpec(42))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Source != "hit" {
		t.Fatalf("second Source = %q, want hit", res2.Source)
	}
}

// TestScrubEndpoint: POST /v1/store/scrub verifies every entry now,
// quarantines planted bit rot, and reports what it found; the rotted
// campaign transparently recomputes on its next submission.
func TestScrubEndpoint(t *testing.T) {
	e := newEnv(t, nil)
	res, err := e.cl.Submit(context.Background(), tinySpec(43))
	if err != nil {
		t.Fatal(err)
	}

	// Rot the stored entry under the server.
	entry := findEntryFile(t, e.storeDir)
	raw, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(entry, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(e.hs.URL+"/v1/store/scrub", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrub status = %d, want 200", resp.StatusCode)
	}
	var rep store.ScrubReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 1 || rep.Corrupt != 1 {
		t.Fatalf("ScrubReport = %+v, want Scanned 1 Corrupt 1", rep)
	}
	if v := e.counter(t, "store.scrub.corrupt"); v != 1 {
		t.Fatalf("store.scrub.corrupt = %d, want 1", v)
	}

	// The campaign recomputes and returns identical bytes.
	res2, err := e.cl.Submit(context.Background(), tinySpec(43))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Source != "miss" {
		t.Fatalf("post-quarantine Source = %q, want miss", res2.Source)
	}
	if !bytes.Equal(res2.Body, res.Body) {
		t.Fatal("recomputed bytes differ from the original result")
	}
}

// TestFlightPinsResultKey: the single-flight execution pins its key for its
// whole lifetime (so the GC cannot evict the result mid-serve) and unpins it
// when the flight resolves.
func TestFlightPinsResultKey(t *testing.T) {
	e := newEnv(t, nil)
	started, release := gated(e)

	spec := tinySpec(44)
	key := spec.Normalize().Key()
	done := make(chan error, 1)
	go func() {
		_, err := e.cl.Submit(context.Background(), spec)
		done <- err
	}()
	<-started
	if n := e.st.Pinned(key); n != 1 {
		t.Fatalf("Pinned during flight = %d, want 1", n)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.st.Pinned(key) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Pinned after flight = %d, want 0", e.st.Pinned(key))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// findEntryFile locates the single *.entry file under a store directory.
func findEntryFile(t *testing.T, dir string) string {
	t.Helper()
	var found string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".entry") {
			if found != "" {
				t.Fatalf("multiple entries: %s and %s", found, path)
			}
			found = path
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if found == "" {
		t.Fatal("no .entry file in store")
	}
	return found
}
