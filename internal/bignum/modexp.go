package bignum

import "math/rand"

// LadderHook observes one Montgomery-ladder iteration. bitIndex counts down
// from the exponent's most significant bit; bit is the exponent bit
// processed. The RSA victims use it to issue the branch-dependent loads of
// Figures 3 and 4 at exactly the algorithmic point the paper attacks.
type LadderHook func(bitIndex int, bit uint)

// ModExpLadder computes base^exp mod m with the Montgomery ladder — the
// timing-balanced square-and-multiply in which both branches perform the
// same operation sequence (one multiply, one square) every iteration, as in
// the MbedTLS engine the paper targets. hook may be nil.
func ModExpLadder(base, exp, m Nat, hook LadderHook) Nat {
	if m.IsZero() {
		panic("bignum: modulus is zero")
	}
	one := New(1)
	if m.Cmp(one) == 0 {
		return Nat{}
	}
	r0 := one         // R0 = 1
	r1 := base.Mod(m) // R1 = base
	for i := exp.BitLen() - 1; i >= 0; i-- {
		bit := exp.Bit(i)
		if hook != nil {
			hook(i, bit)
		}
		if bit == 0 {
			// R1 = R0·R1, R0 = R0²
			r1 = r0.ModMul(r1, m)
			r0 = r0.ModMul(r0, m)
		} else {
			// R0 = R0·R1, R1 = R1²
			r0 = r0.ModMul(r1, m)
			r1 = r1.ModMul(r1, m)
		}
	}
	return r0
}

// ModExp is the plain left-to-right square-and-multiply (used by key
// generation and the Miller–Rabin test, where side-channel balance does not
// matter).
func ModExp(base, exp, m Nat) Nat {
	if m.IsZero() {
		panic("bignum: modulus is zero")
	}
	one := New(1)
	if m.Cmp(one) == 0 {
		return Nat{}
	}
	result := one
	b := base.Mod(m)
	for i := exp.BitLen() - 1; i >= 0; i-- {
		result = result.ModMul(result, m)
		if exp.Bit(i) == 1 {
			result = result.ModMul(b, m)
		}
	}
	return result
}

// smallPrimes speeds up candidate filtering in GeneratePrime.
var smallPrimes = []uint64{
	2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
	71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
}

// ProbablyPrime runs `rounds` Miller–Rabin iterations with bases drawn from
// rng. It is deterministic for a fixed source.
func ProbablyPrime(n Nat, rounds int, rng *rand.Rand) bool {
	if n.BitLen() <= 6 {
		v := n.Uint64()
		for _, p := range smallPrimes {
			if v == p {
				return true
			}
			if v%p == 0 {
				return false
			}
		}
		return v > 1
	}
	for _, p := range smallPrimes {
		if n.Cmp(New(p)) == 0 {
			return true
		}
		if n.Mod(New(p)).IsZero() {
			return false
		}
	}
	one := New(1)
	two := New(2)
	nMinus1 := n.Sub(one)
	// n-1 = d·2^s with d odd.
	d := nMinus1
	s := 0
	for d.Bit(0) == 0 {
		d = d.Shr(1)
		s++
	}
witness:
	for r := 0; r < rounds; r++ {
		a := RandBelow(rng, nMinus1.Sub(two)).Add(two) // a in [2, n-2]
		x := ModExp(a, d, n)
		if x.Cmp(one) == 0 || x.Cmp(nMinus1) == 0 {
			continue
		}
		for i := 0; i < s-1; i++ {
			x = x.ModMul(x, n)
			if x.Cmp(nMinus1) == 0 {
				continue witness
			}
		}
		return false
	}
	return true
}

// GeneratePrime returns a random prime of exactly the given bit length.
func GeneratePrime(rng *rand.Rand, bitLen int, mrRounds int) Nat {
	if bitLen < 8 {
		panic("bignum: prime bit length too small")
	}
	for {
		cand := RandBits(rng, bitLen)
		// Force odd.
		if cand.Bit(0) == 0 {
			cand = cand.Add(New(1))
		}
		if ProbablyPrime(cand, mrRounds, rng) {
			return cand
		}
	}
}

// GCD returns the greatest common divisor of a and b.
func GCD(a, b Nat) Nat {
	for !b.IsZero() {
		a, b = b, a.Mod(b)
	}
	return a
}

// ModInverse returns x with (a·x) mod m == 1, or ok=false when a is not
// invertible. It runs the extended Euclid algorithm over signed
// coefficients tracked as (Nat, sign) pairs.
func ModInverse(a, m Nat) (Nat, bool) {
	if m.IsZero() {
		return Nat{}, false
	}
	// Iterative extended Euclid: r0=m, r1=a; t0=0, t1=1 (with signs).
	r0, r1 := m, a.Mod(m)
	t0, t1 := Nat{}, New(1)
	s0, s1 := 1, 1 // signs of t0, t1
	for !r1.IsZero() {
		q, r := r0.DivMod(r1)
		// t2 = t0 - q·t1 (signed arithmetic)
		qt := q.Mul(t1)
		var t2 Nat
		var s2 int
		if s0 == s1 {
			if t0.Cmp(qt) >= 0 {
				t2, s2 = t0.Sub(qt), s0
			} else {
				t2, s2 = qt.Sub(t0), -s1
			}
		} else {
			t2, s2 = t0.Add(qt), s0
		}
		r0, r1 = r1, r
		t0, t1, s0, s1 = t1, t2, s1, s2
	}
	if r0.Cmp(New(1)) != 0 {
		return Nat{}, false
	}
	if s0 < 0 {
		return m.Sub(t0.Mod(m)).Mod(m), true
	}
	return t0.Mod(m), true
}
