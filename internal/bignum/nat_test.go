package bignum

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// toBig converts a Nat to math/big for cross-validation.
func toBig(n Nat) *big.Int { return new(big.Int).SetBytes(n.Bytes()) }

// randNat produces a deterministic pseudo-random Nat of up to maxBits bits.
func randNat(rng *rand.Rand, maxBits int) Nat {
	bl := rng.Intn(maxBits) + 1
	return RandBits(rng, bl)
}

func TestBasicValues(t *testing.T) {
	if !New(0).IsZero() {
		t.Fatal("New(0) not zero")
	}
	if New(5).Uint64() != 5 {
		t.Fatal("Uint64 roundtrip")
	}
	if New(0).BitLen() != 0 || New(1).BitLen() != 1 || New(255).BitLen() != 8 {
		t.Fatal("BitLen wrong")
	}
}

func TestCrossValidatedArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		a := randNat(rng, 512)
		b := randNat(rng, 512)
		ba, bb := toBig(a), toBig(b)

		if got, want := toBig(a.Add(b)), new(big.Int).Add(ba, bb); got.Cmp(want) != 0 {
			t.Fatalf("Add: %v + %v: got %v want %v", a, b, got, want)
		}
		if got, want := toBig(a.Mul(b)), new(big.Int).Mul(ba, bb); got.Cmp(want) != 0 {
			t.Fatalf("Mul mismatch")
		}
		hi, lo := a, b
		if hi.Cmp(lo) < 0 {
			hi, lo = lo, hi
		}
		if got, want := toBig(hi.Sub(lo)), new(big.Int).Sub(toBig(hi), toBig(lo)); got.Cmp(want) != 0 {
			t.Fatalf("Sub mismatch")
		}
		if !b.IsZero() {
			q, r := a.DivMod(b)
			wq, wr := new(big.Int).QuoRem(ba, bb, new(big.Int))
			if toBig(q).Cmp(wq) != 0 || toBig(r).Cmp(wr) != 0 {
				t.Fatalf("DivMod mismatch: %v / %v", a, b)
			}
		}
		if got, want := a.Cmp(b), ba.Cmp(bb); got != want {
			t.Fatalf("Cmp mismatch")
		}
	}
}

func TestShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := randNat(rng, 300)
		k := uint(rng.Intn(130))
		if got, want := toBig(a.Shl(k)), new(big.Int).Lsh(toBig(a), k); got.Cmp(want) != 0 {
			t.Fatalf("Shl mismatch")
		}
		if got, want := toBig(a.Shr(k)), new(big.Int).Rsh(toBig(a), k); got.Cmp(want) != 0 {
			t.Fatalf("Shr mismatch")
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		n := FromBytes(b)
		// Strip leading zeros for comparison.
		i := 0
		for i < len(b) && b[i] == 0 {
			i++
		}
		return bytes.Equal(n.Bytes(), b[i:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		a := randNat(rng, 400)
		back, err := FromHex(a.String())
		if err != nil {
			t.Fatal(err)
		}
		if back.Cmp(a) != 0 {
			t.Fatalf("hex roundtrip: %v -> %v", a, back)
		}
	}
	if _, err := FromHex(""); err == nil {
		t.Fatal("empty hex accepted")
	}
	if _, err := FromHex("xyz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if MustHex("ff").Uint64() != 255 {
		t.Fatal("MustHex")
	}
}

func TestSubUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(1).Sub(New(2))
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(1).DivMod(Nat{})
}

func TestModExpMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		base := randNat(rng, 256)
		exp := randNat(rng, 128)
		m := randNat(rng, 256)
		if m.IsZero() {
			continue
		}
		want := new(big.Int).Exp(toBig(base), toBig(exp), toBig(m))
		if got := toBig(ModExp(base, exp, m)); got.Cmp(want) != 0 {
			t.Fatalf("ModExp mismatch: %v^%v mod %v", base, exp, m)
		}
		if got := toBig(ModExpLadder(base, exp, m, nil)); got.Cmp(want) != 0 {
			t.Fatalf("ModExpLadder mismatch")
		}
	}
}

func TestLadderHookSeesEveryBit(t *testing.T) {
	exp := MustHex("b5") // 10110101
	var bits []uint
	ModExpLadder(New(3), exp, New(1000003), func(i int, b uint) {
		bits = append(bits, b)
	})
	want := []uint{1, 0, 1, 1, 0, 1, 0, 1}
	if len(bits) != len(want) {
		t.Fatalf("hook saw %d bits, want %d", len(bits), len(want))
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bit %d = %d, want %d", i, bits[i], want[i])
		}
	}
}

func TestModExpEdgeCases(t *testing.T) {
	if !ModExp(New(5), New(0), New(7)).Sub(New(1)).IsZero() {
		t.Fatal("x^0 != 1")
	}
	if !ModExp(New(5), New(3), New(1)).IsZero() {
		t.Fatal("mod 1 != 0")
	}
	if !ModExpLadder(New(5), New(3), New(1), nil).IsZero() {
		t.Fatal("ladder mod 1 != 0")
	}
}

func TestProbablyPrimeKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	primes := []uint64{2, 3, 5, 97, 101, 65537, 2147483647}
	for _, p := range primes {
		if !ProbablyPrime(New(p), 16, rng) {
			t.Fatalf("%d misclassified composite", p)
		}
	}
	composites := []uint64{1, 4, 100, 65535, 561 /* Carmichael */, 341550071728321}
	for _, c := range composites {
		if ProbablyPrime(New(c), 16, rng) {
			t.Fatalf("%d misclassified prime", c)
		}
	}
}

func TestGeneratePrime(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p := GeneratePrime(rng, 128, 12)
	if p.BitLen() != 128 {
		t.Fatalf("prime bit length %d", p.BitLen())
	}
	if !toBig(p).ProbablyPrime(20) {
		t.Fatalf("generated value %v not prime per math/big", p)
	}
}

func TestGCD(t *testing.T) {
	if GCD(New(12), New(18)).Uint64() != 6 {
		t.Fatal("gcd(12,18)")
	}
	if GCD(New(17), New(31)).Uint64() != 1 {
		t.Fatal("gcd of primes")
	}
}

func TestModInverseMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		a := randNat(rng, 128)
		m := randNat(rng, 128)
		if m.IsZero() || m.Cmp(New(1)) == 0 {
			continue
		}
		inv, ok := ModInverse(a, m)
		wantOK := new(big.Int).GCD(nil, nil, toBig(a), toBig(m)).Cmp(big.NewInt(1)) == 0
		if ok != wantOK {
			t.Fatalf("invertibility mismatch for %v mod %v: got %v want %v", a, m, ok, wantOK)
		}
		if ok {
			prod := a.ModMul(inv, m)
			if prod.Cmp(New(1)) != 0 {
				t.Fatalf("a·inv mod m = %v, want 1", prod)
			}
		}
	}
}

func TestRandBelowInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	bound := MustHex("10000000000000000") // 2^64
	for i := 0; i < 200; i++ {
		if RandBelow(rng, bound).Cmp(bound) >= 0 {
			t.Fatal("RandBelow out of range")
		}
	}
}

// TestAddSubInverseQuick property-tests (a+b)-b == a.
func TestAddSubInverseQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seedA, seedB uint32) bool {
		a := RandBits(rand.New(rand.NewSource(int64(seedA)+1)), int(seedA%500)+1)
		b := RandBits(rand.New(rand.NewSource(int64(seedB)+1)), int(seedB%500)+1)
		return a.Add(b).Sub(b).Cmp(a) == 0
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMulDivInverseQuick property-tests (a·b)/b == a with remainder 0.
func TestMulDivInverseQuick(t *testing.T) {
	f := func(seedA, seedB uint32) bool {
		a := RandBits(rand.New(rand.NewSource(int64(seedA)+1)), int(seedA%300)+1)
		b := RandBits(rand.New(rand.NewSource(int64(seedB)+1)), int(seedB%300)+1)
		q, r := a.Mul(b).DivMod(b)
		return r.IsZero() && q.Cmp(a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
