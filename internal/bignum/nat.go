// Package bignum implements arbitrary-precision unsigned integers from
// scratch — the arithmetic substrate for the paper's RSA victims. It
// provides schoolbook multiplication, bit-serial division, modular
// arithmetic, a Montgomery-ladder modular exponentiation (the timing-
// balanced algorithm AfterImage attacks in §6.2), and Miller–Rabin
// primality testing for key generation. Tests cross-validate every
// operation against math/big.
package bignum

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
)

// Nat is an arbitrary-precision unsigned integer. The zero value represents
// zero. Nats are immutable: operations return fresh values.
type Nat struct {
	// limbs are little-endian base-2^64 digits with no trailing zeros.
	limbs []uint64
}

// New returns a Nat holding the given value.
func New(x uint64) Nat {
	if x == 0 {
		return Nat{}
	}
	return Nat{limbs: []uint64{x}}
}

// trim removes high zero limbs.
func trim(l []uint64) []uint64 {
	for len(l) > 0 && l[len(l)-1] == 0 {
		l = l[:len(l)-1]
	}
	return l
}

// IsZero reports whether n is zero.
func (n Nat) IsZero() bool { return len(n.limbs) == 0 }

// Uint64 returns the low 64 bits of n.
func (n Nat) Uint64() uint64 {
	if n.IsZero() {
		return 0
	}
	return n.limbs[0]
}

// BitLen reports the length of n in bits.
func (n Nat) BitLen() int {
	if n.IsZero() {
		return 0
	}
	top := n.limbs[len(n.limbs)-1]
	return (len(n.limbs)-1)*64 + bits.Len64(top)
}

// Bit returns bit i of n (0 or 1).
func (n Nat) Bit(i int) uint {
	limb := i / 64
	if limb >= len(n.limbs) {
		return 0
	}
	return uint(n.limbs[limb] >> (i % 64) & 1)
}

// Cmp compares n and m: -1, 0 or +1.
func (n Nat) Cmp(m Nat) int {
	switch {
	case len(n.limbs) < len(m.limbs):
		return -1
	case len(n.limbs) > len(m.limbs):
		return 1
	}
	for i := len(n.limbs) - 1; i >= 0; i-- {
		switch {
		case n.limbs[i] < m.limbs[i]:
			return -1
		case n.limbs[i] > m.limbs[i]:
			return 1
		}
	}
	return 0
}

// Add returns n + m.
func (n Nat) Add(m Nat) Nat {
	a, b := n.limbs, m.limbs
	if len(a) < len(b) {
		a, b = b, a
	}
	out := make([]uint64, len(a)+1)
	var carry uint64
	for i := range a {
		var bi uint64
		if i < len(b) {
			bi = b[i]
		}
		s, c1 := bits.Add64(a[i], bi, carry)
		out[i] = s
		carry = c1
	}
	out[len(a)] = carry
	return Nat{limbs: trim(out)}
}

// Sub returns n - m; it panics when m > n (Nats are unsigned).
func (n Nat) Sub(m Nat) Nat {
	if n.Cmp(m) < 0 {
		panic("bignum: negative result in Sub")
	}
	out := make([]uint64, len(n.limbs))
	var borrow uint64
	for i := range n.limbs {
		var mi uint64
		if i < len(m.limbs) {
			mi = m.limbs[i]
		}
		d, b1 := bits.Sub64(n.limbs[i], mi, borrow)
		out[i] = d
		borrow = b1
	}
	if borrow != 0 {
		panic("bignum: borrow out of Sub")
	}
	return Nat{limbs: trim(out)}
}

// Mul returns n × m (schoolbook).
func (n Nat) Mul(m Nat) Nat {
	if n.IsZero() || m.IsZero() {
		return Nat{}
	}
	out := make([]uint64, len(n.limbs)+len(m.limbs))
	for i, a := range n.limbs {
		var carry uint64
		for j, b := range m.limbs {
			hi, lo := bits.Mul64(a, b)
			s, c1 := bits.Add64(out[i+j], lo, 0)
			s, c2 := bits.Add64(s, carry, 0)
			out[i+j] = s
			carry = hi + c1 + c2 // cannot overflow: hi ≤ 2^64-2
		}
		out[i+len(m.limbs)] += carry
	}
	return Nat{limbs: trim(out)}
}

// Shl returns n << k.
func (n Nat) Shl(k uint) Nat {
	if n.IsZero() || k == 0 {
		return Nat{limbs: append([]uint64(nil), n.limbs...)}
	}
	words, shift := k/64, k%64
	out := make([]uint64, len(n.limbs)+int(words)+1)
	for i, l := range n.limbs {
		out[i+int(words)] |= l << shift
		if shift != 0 {
			out[i+int(words)+1] |= l >> (64 - shift)
		}
	}
	return Nat{limbs: trim(out)}
}

// Shr returns n >> k.
func (n Nat) Shr(k uint) Nat {
	words, shift := int(k/64), k%64
	if words >= len(n.limbs) {
		return Nat{}
	}
	out := make([]uint64, len(n.limbs)-words)
	for i := range out {
		out[i] = n.limbs[i+words] >> shift
		if shift != 0 && i+words+1 < len(n.limbs) {
			out[i] |= n.limbs[i+words+1] << (64 - shift)
		}
	}
	return Nat{limbs: trim(out)}
}

// DivMod returns (n/d, n%d); it panics on division by zero.
func (n Nat) DivMod(d Nat) (q, r Nat) {
	if d.IsZero() {
		panic("bignum: division by zero")
	}
	if n.Cmp(d) < 0 {
		return Nat{}, n
	}
	if len(d.limbs) == 1 {
		return n.divModWord(d.limbs[0])
	}
	// Bit-serial long division from the most significant bit.
	bitsN := n.BitLen()
	qLimbs := make([]uint64, (bitsN+63)/64)
	r = Nat{}
	for i := bitsN - 1; i >= 0; i-- {
		r = r.Shl(1)
		if n.Bit(i) == 1 {
			r = r.Add(New(1))
		}
		if r.Cmp(d) >= 0 {
			r = r.Sub(d)
			qLimbs[i/64] |= 1 << (i % 64)
		}
	}
	return Nat{limbs: trim(qLimbs)}, r
}

// divModWord divides by a single limb using hardware 128/64 division.
func (n Nat) divModWord(d uint64) (Nat, Nat) {
	out := make([]uint64, len(n.limbs))
	var rem uint64
	for i := len(n.limbs) - 1; i >= 0; i-- {
		out[i], rem = bits.Div64(rem, n.limbs[i], d)
	}
	return Nat{limbs: trim(out)}, New(rem)
}

// Mod returns n mod d.
func (n Nat) Mod(d Nat) Nat {
	_, r := n.DivMod(d)
	return r
}

// ModAdd returns (n + m) mod d.
func (n Nat) ModAdd(m, d Nat) Nat { return n.Add(m).Mod(d) }

// ModMul returns (n × m) mod d.
func (n Nat) ModMul(m, d Nat) Nat { return n.Mul(m).Mod(d) }

// Bytes returns the big-endian byte representation (empty for zero).
func (n Nat) Bytes() []byte {
	if n.IsZero() {
		return nil
	}
	out := make([]byte, len(n.limbs)*8)
	for i, l := range n.limbs {
		for b := 0; b < 8; b++ {
			out[len(out)-1-(i*8+b)] = byte(l >> (8 * b))
		}
	}
	for len(out) > 0 && out[0] == 0 {
		out = out[1:]
	}
	return out
}

// FromBytes parses a big-endian byte string.
func FromBytes(b []byte) Nat {
	limbs := make([]uint64, (len(b)+7)/8)
	for i := 0; i < len(b); i++ {
		byteIdx := len(b) - 1 - i
		limbs[i/8] |= uint64(b[byteIdx]) << (8 * (i % 8))
	}
	return Nat{limbs: trim(limbs)}
}

// FromHex parses a hexadecimal string (without 0x prefix).
func FromHex(s string) (Nat, error) {
	s = strings.TrimPrefix(strings.ToLower(s), "0x")
	if s == "" {
		return Nat{}, fmt.Errorf("bignum: empty hex string")
	}
	n := Nat{}
	sixteen := New(16)
	for _, c := range s {
		var v uint64
		switch {
		case c >= '0' && c <= '9':
			v = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			v = uint64(c-'a') + 10
		default:
			return Nat{}, fmt.Errorf("bignum: bad hex digit %q", c)
		}
		n = n.Mul(sixteen).Add(New(v))
	}
	return n, nil
}

// MustHex is FromHex that panics (for constants in tests and examples).
func MustHex(s string) Nat {
	n, err := FromHex(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String renders n in lowercase hex.
func (n Nat) String() string {
	if n.IsZero() {
		return "0"
	}
	var sb strings.Builder
	for i := len(n.limbs) - 1; i >= 0; i-- {
		if i == len(n.limbs)-1 {
			fmt.Fprintf(&sb, "%x", n.limbs[i])
		} else {
			fmt.Fprintf(&sb, "%016x", n.limbs[i])
		}
	}
	return sb.String()
}

// RandBits returns a uniformly random Nat with exactly the given bit length
// (top bit set), using the provided deterministic source.
func RandBits(rng *rand.Rand, bitLen int) Nat {
	if bitLen <= 0 {
		return Nat{}
	}
	limbs := make([]uint64, (bitLen+63)/64)
	for i := range limbs {
		limbs[i] = rng.Uint64()
	}
	top := (bitLen-1)%64 + 1
	limbs[len(limbs)-1] &= ^uint64(0) >> (64 - uint(top))
	limbs[len(limbs)-1] |= 1 << uint(top-1)
	return Nat{limbs: trim(limbs)}
}

// RandBelow returns a uniformly random Nat in [0, bound) by rejection.
func RandBelow(rng *rand.Rand, bound Nat) Nat {
	if bound.IsZero() {
		panic("bignum: RandBelow of zero")
	}
	bl := bound.BitLen()
	for {
		limbs := make([]uint64, (bl+63)/64)
		for i := range limbs {
			limbs[i] = rng.Uint64()
		}
		excess := len(limbs)*64 - bl
		limbs[len(limbs)-1] &= ^uint64(0) >> uint(excess)
		n := Nat{limbs: trim(limbs)}
		if n.Cmp(bound) < 0 {
			return n
		}
	}
}
