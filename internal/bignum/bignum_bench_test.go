package bignum

import (
	"math/rand"
	"testing"
)

func benchNats(bits int) (a, b, m Nat) {
	rng := rand.New(rand.NewSource(1))
	return RandBits(rng, bits), RandBits(rng, bits), RandBits(rng, bits)
}

func BenchmarkMul512(b *testing.B) {
	x, y, _ := benchNats(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}

func BenchmarkMod1024by512(b *testing.B) {
	x, _, _ := benchNats(1024)
	_, _, m := benchNats(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mod(m)
	}
}

func BenchmarkModExpLadder256(b *testing.B) {
	base, exp, m := benchNats(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ModExpLadder(base, exp, m, nil)
	}
}
