// Package rsa implements textbook RSA over the from-scratch bignum package:
// key generation, raw encryption, and a timing-constant Montgomery-ladder
// decryption — the MbedTLS-style engine of Figures 3 and 4 that the paper's
// end-to-end attack extracts a private key from (§6.2). Decryption exposes a
// per-ladder-iteration hook so the simulated victim can issue the branch-
// dependent loads at exactly the algorithmic point AfterImage targets.
package rsa

import (
	"fmt"
	"math/rand"
	"sync"

	"afterimage/internal/bignum"
)

// PublicKey is (N, e).
type PublicKey struct {
	N bignum.Nat
	E bignum.Nat
}

// PrivateKey carries the private exponent and the generating primes.
type PrivateKey struct {
	PublicKey
	D bignum.Nat
	P bignum.Nat
	Q bignum.Nat
}

// GenerateKey produces a key with an n-bit modulus from the deterministic
// source. e is fixed to 65537.
func GenerateKey(rng *rand.Rand, bits int) (*PrivateKey, error) {
	if bits < 32 || bits%2 != 0 {
		return nil, fmt.Errorf("rsa: modulus size %d unsupported", bits)
	}
	e := bignum.New(65537)
	one := bignum.New(1)
	for {
		p := bignum.GeneratePrime(rng, bits/2, 12)
		q := bignum.GeneratePrime(rng, bits/2, 12)
		if p.Cmp(q) == 0 {
			continue
		}
		n := p.Mul(q)
		if n.BitLen() != bits {
			continue
		}
		phi := p.Sub(one).Mul(q.Sub(one))
		d, ok := bignum.ModInverse(e, phi)
		if !ok {
			continue
		}
		return &PrivateKey{PublicKey: PublicKey{N: n, E: e}, D: d, P: p, Q: q}, nil
	}
}

// Encrypt computes m^e mod N (raw, textbook RSA — the primitive the paper's
// victims expose).
func (pub *PublicKey) Encrypt(m bignum.Nat) (bignum.Nat, error) {
	if m.Cmp(pub.N) >= 0 {
		return bignum.Nat{}, fmt.Errorf("rsa: message exceeds modulus")
	}
	return bignum.ModExp(m, pub.E, pub.N), nil
}

// Decrypt computes c^d mod N with the timing-constant Montgomery ladder.
func (priv *PrivateKey) Decrypt(c bignum.Nat) bignum.Nat {
	return bignum.ModExpLadder(c, priv.D, priv.N, nil)
}

// DecryptWithHook is Decrypt with a per-ladder-iteration observer; the
// simulated victim uses it to issue the Figure 3/4 branch-dependent loads.
func (priv *PrivateKey) DecryptWithHook(c bignum.Nat, hook bignum.LadderHook) bignum.Nat {
	return bignum.ModExpLadder(c, priv.D, priv.N, hook)
}

// KeyBits reports the modulus size.
func (priv *PrivateKey) KeyBits() int { return priv.N.BitLen() }

var (
	testKeyMu    sync.Mutex
	testKeyCache = map[int]*PrivateKey{}
)

// TestKey returns a deterministic cached key of the given modulus size —
// shared by tests, benchmarks and examples to avoid repeated generation.
func TestKey(bits int) *PrivateKey {
	testKeyMu.Lock()
	defer testKeyMu.Unlock()
	if k, ok := testKeyCache[bits]; ok {
		return k
	}
	k, err := GenerateKey(rand.New(rand.NewSource(int64(bits)*7919+1)), bits)
	if err != nil {
		panic(err)
	}
	testKeyCache[bits] = k
	return k
}
