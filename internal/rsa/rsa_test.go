package rsa

import (
	"math/rand"
	"testing"

	"afterimage/internal/bignum"
)

func TestRoundTrip(t *testing.T) {
	key := TestKey(256)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		m := bignum.RandBelow(rng, key.N)
		c, err := key.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := key.Decrypt(c); got.Cmp(m) != 0 {
			t.Fatalf("roundtrip failed: %v -> %v", m, got)
		}
	}
}

func TestHookedDecryptMatchesPlain(t *testing.T) {
	key := TestKey(256)
	c, _ := key.Encrypt(bignum.New(12345))
	var bits int
	got := key.DecryptWithHook(c, func(i int, b uint) { bits++ })
	if got.Cmp(key.Decrypt(c)) != 0 {
		t.Fatal("hooked decrypt diverged")
	}
	if bits != key.D.BitLen() {
		t.Fatalf("hook saw %d iterations, want %d", bits, key.D.BitLen())
	}
}

func TestHookObservesExactKeyBits(t *testing.T) {
	key := TestKey(128)
	c, _ := key.Encrypt(bignum.New(7))
	var seen []uint
	key.DecryptWithHook(c, func(i int, b uint) { seen = append(seen, b) })
	for idx, b := range seen {
		bitIndex := key.D.BitLen() - 1 - idx
		if b != key.D.Bit(bitIndex) {
			t.Fatalf("iteration %d reported bit %d, want %d", idx, b, key.D.Bit(bitIndex))
		}
	}
}

func TestEncryptRejectsOversizedMessage(t *testing.T) {
	key := TestKey(128)
	if _, err := key.Encrypt(key.N.Add(bignum.New(1))); err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestGenerateKeyProperties(t *testing.T) {
	key, err := GenerateKey(rand.New(rand.NewSource(2)), 128)
	if err != nil {
		t.Fatal(err)
	}
	if key.N.BitLen() != 128 {
		t.Fatalf("modulus bits = %d", key.N.BitLen())
	}
	if key.P.Mul(key.Q).Cmp(key.N) != 0 {
		t.Fatal("N != P*Q")
	}
	// e·d ≡ 1 (mod φ)
	one := bignum.New(1)
	phi := key.P.Sub(one).Mul(key.Q.Sub(one))
	if key.E.ModMul(key.D, phi).Cmp(one) != 0 {
		t.Fatal("e·d mod phi != 1")
	}
}

func TestGenerateKeyRejectsBadSizes(t *testing.T) {
	if _, err := GenerateKey(rand.New(rand.NewSource(1)), 31); err == nil {
		t.Fatal("odd/small size accepted")
	}
}

func TestTestKeyIsCachedAndDeterministic(t *testing.T) {
	a := TestKey(128)
	b := TestKey(128)
	if a != b {
		t.Fatal("TestKey not cached")
	}
	if a.D.IsZero() {
		t.Fatal("degenerate test key")
	}
}
