// Package textplot renders the small terminal visualisations the
// afterimage binaries share: horizontal bars, hit/miss timelines, bit
// strings, and aligned tables. Everything returns plain strings so output
// stays testable.
package textplot

import (
	"fmt"
	"strings"
)

// Bar renders a horizontal bar scaled so that max fills width runes.
func Bar(v, max float64, width int) string {
	if max <= 0 || v <= 0 || width <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Bits renders a boolean slice as a 0/1 string.
func Bits(bs []bool) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// Timeline renders a status sequence: '.' for true (e.g. prefetcher still
// triggered) and 'X' for false.
func Timeline(status []bool) string {
	out := make([]byte, len(status))
	for i, s := range status {
		if s {
			out[i] = '.'
		} else {
			out[i] = 'X'
		}
	}
	return string(out)
}

// Survival renders the Figure 8-style per-index survival string: '^' for
// surviving entries, '.' for evicted ones.
func Survival(alive []bool) string {
	out := make([]byte, len(alive))
	for i, a := range alive {
		if a {
			out[i] = '^'
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}

// Series renders one labelled value-with-bar line, marking values beyond
// the threshold with '*'.
func Series(label string, v, max, threshold float64, width int) string {
	mark := " "
	if v > threshold {
		mark = "*"
	}
	return fmt.Sprintf("%s %8.0f %s %s", label, v, mark, Bar(v, max, width))
}

// Table lays out rows with columns padded to the widest cell.
type Table struct {
	rows [][]string
}

// Row appends one row of cells.
func (t *Table) Row(cells ...string) { t.rows = append(t.rows, cells) }

// Rowf appends one row built from format/value pairs.
func (t *Table) Rowf(formats []string, values ...interface{}) {
	cells := make([]string, len(formats))
	for i, f := range formats {
		if i < len(values) {
			cells[i] = fmt.Sprintf(f, values[i])
		}
	}
	t.rows = append(t.rows, cells)
}

// String renders the aligned table.
func (t *Table) String() string {
	widths := map[int]int{}
	for _, r := range t.rows {
		for c, cell := range r {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var sb strings.Builder
	for _, r := range t.rows {
		for c, cell := range r {
			if c > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[c] - len(cell); c < len(r)-1 && pad > 0 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// MaxFloat returns the maximum of xs (0 for empty input).
func MaxFloat(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
