package textplot

import (
	"strings"
	"testing"
)

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != "#####" {
		t.Fatalf("half bar = %q", Bar(5, 10, 10))
	}
	if Bar(20, 10, 10) != strings.Repeat("#", 10) {
		t.Fatal("bar not clamped")
	}
	if Bar(-1, 10, 10) != "" || Bar(5, 0, 10) != "" || Bar(5, 10, 0) != "" {
		t.Fatal("degenerate bars not empty")
	}
}

func TestBitsAndTimeline(t *testing.T) {
	if Bits([]bool{true, false, true}) != "101" {
		t.Fatal("Bits wrong")
	}
	if Timeline([]bool{true, false}) != ".X" {
		t.Fatal("Timeline wrong")
	}
	if Survival([]bool{false, true}) != ".^" {
		t.Fatal("Survival wrong")
	}
	if Bits(nil) != "" {
		t.Fatal("empty bits")
	}
}

func TestSeriesMarksThreshold(t *testing.T) {
	s := Series("x", 150, 200, 120, 10)
	if !strings.Contains(s, "*") {
		t.Fatalf("threshold crossing unmarked: %q", s)
	}
	s = Series("x", 50, 200, 120, 10)
	if strings.Contains(s, "*") {
		t.Fatalf("below-threshold marked: %q", s)
	}
}

func TestTableAlignment(t *testing.T) {
	var tb Table
	tb.Row("a", "bbbb", "c")
	tb.Row("aaaa", "b", "c")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	// The second column starts at the same offset in both rows.
	if strings.Index(lines[0], "bbbb") != strings.Index(lines[1], "b") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableRowf(t *testing.T) {
	var tb Table
	tb.Rowf([]string{"%s", "%.1f%%"}, "name", 12.345)
	if !strings.Contains(tb.String(), "12.3%") {
		t.Fatalf("Rowf output: %q", tb.String())
	}
}

func TestMaxFloat(t *testing.T) {
	if MaxFloat(nil) != 0 {
		t.Fatal("empty max")
	}
	if MaxFloat([]float64{1, 9, 3}) != 9 {
		t.Fatal("max wrong")
	}
}
