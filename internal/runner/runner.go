// Package runner is the supervised job-execution subsystem behind every
// multi-point campaign (fault sweeps, the full report's Table 3 runs, the
// mitigation study): a bounded worker pool that executes deterministic,
// independently-seeded jobs with per-job deadlines, retry-with-backoff for
// transient simulator faults, fail-fast degradation for permanent ones, and
// crash-safe checkpoint/resume.
//
// Design rules the campaign layers rely on:
//
//   - Jobs are independent and deterministic: the value a job returns is a
//     pure function of (its inputs, the attempt number). The runner may
//     therefore execute jobs in any order on any number of workers — the
//     result slice is always in job order and byte-identical to a
//     sequential run.
//   - Every job value crosses a JSON boundary (json.Marshal on completion,
//     the checkpoint file on resume), so a resumed campaign reassembles the
//     exact bytes a straight-through run would have produced.
//   - Failures are classified (see Class): transient faults — the cycle
//     watchdog, injected perturbations, segfaults from simulated code — are
//     retried with capped, deterministically-jittered exponential backoff;
//     permanent faults (API misuse, validation errors) and exhausted retry
//     budgets degrade the single job, never the campaign.
package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"afterimage/internal/obslog"
	"afterimage/internal/sim"
	"afterimage/internal/telemetry"
	"afterimage/internal/vfs"
)

// Class classifies a job failure for the retry policy.
type Class int

// The failure classes.
const (
	// ClassTransient failures are retried with backoff until the attempt
	// budget runs out.
	ClassTransient Class = iota
	// ClassPermanent failures fail fast: the job is recorded as degraded on
	// its first failing attempt.
	ClassPermanent
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// DefaultClassify is the standard fault taxonomy: typed simulator faults are
// transient (another attempt may land a different noise schedule or stay
// inside the budget) except FaultAPIMisuse, which marks a contract violation
// no retry can fix. Non-simulator errors (validation, marshalling) are
// permanent.
func DefaultClassify(err error) Class {
	if f, ok := sim.AsFault(err); ok {
		if f.Kind == sim.FaultAPIMisuse {
			return ClassPermanent
		}
		return ClassTransient
	}
	return ClassPermanent
}

// Job is one deterministic unit of a campaign.
type Job struct {
	// Key identifies the job within its campaign — checkpoint entries are
	// keyed by it, so it must be stable across runs and unique in the job
	// list.
	Key string
	// Run executes the job. attempt counts from 0; deterministic jobs that
	// want independent retrials fold it into their derived seeds. The
	// context carries campaign cancellation and the per-job deadline — wire
	// it into the simulator watchdog (Lab.ArmCancel) so an expired job
	// faults instead of running away. A non-nil value returned alongside an
	// error is kept as the job's partial result if the job ends degraded.
	Run func(ctx context.Context, attempt int) (any, error)
}

// Options configures a campaign run.
type Options struct {
	// Workers bounds the worker pool; <= 0 means 1 (sequential). Results do
	// not depend on the worker count.
	Workers int
	// MaxAttempts is the per-job attempt budget including the first run;
	// <= 0 means DefaultMaxAttempts.
	MaxAttempts int
	// BackoffBase is the delay before the first retry (doubled per further
	// retry up to BackoffMax); <= 0 means DefaultBackoffBase.
	BackoffBase time.Duration
	// BackoffMax caps the exponential growth; <= 0 means DefaultBackoffMax.
	BackoffMax time.Duration
	// Seed drives the deterministic backoff jitter.
	Seed int64
	// JobTimeout is the per-job wall-clock deadline (0 = none). The job's
	// context expires after it; a job wired into the simulator watchdog then
	// faults with FaultBudget and is retried as transient.
	JobTimeout time.Duration
	// CheckpointPath, when set, persists every completed job to this file
	// via atomic write-temp-then-rename after each completion. A checkpoint
	// write failure (full or failing disk) never fails the campaign: the
	// failure is logged, runner.checkpoint.degraded is bumped, and
	// checkpointing is disabled for the rest of the run — the campaign
	// completes, it just cannot be resumed.
	CheckpointPath string
	// FS is the filesystem checkpoints are read and written through; nil
	// means the real one (vfs.OS()). The disk-chaos harness passes a
	// vfs.FaultFS.
	FS vfs.FS
	// Resume loads CheckpointPath before running and skips jobs already
	// completed there. The file's fingerprint must match Fingerprint.
	Resume bool
	// Fingerprint identifies the campaign (hash its options and seed with
	// the Fingerprint helper); a checkpoint written by a different campaign
	// is rejected on resume instead of silently poisoning the results.
	Fingerprint string
	// Classify overrides DefaultClassify.
	Classify func(error) Class
	// Metrics, when set, receives the runner counters (runner.jobs.started/
	// completed/retried/resumed/degraded/skipped, runner.backoff.waits/
	// nanos, runner.checkpoint.writes) and the runner.attempt.us wall-time
	// histogram.
	Metrics *telemetry.Registry
	// Logger, when set, receives structured per-job events (retries,
	// degradations), stamped with the campaign's correlation ID from the
	// run context. nil disables logging.
	Logger *obslog.Logger
	// Sleep replaces the backoff sleep (tests). nil sleeps on a timer that
	// also aborts on campaign cancellation.
	Sleep func(time.Duration)
	// OnCheckpoint is invoked (serialised) after each checkpoint write with
	// the number of completed jobs so far — the chaos tests' kill hook.
	OnCheckpoint func(completed int)
}

// Defaults for the zero Options.
const (
	DefaultMaxAttempts = 3
	DefaultBackoffBase = 25 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second
)

// JobResult is one job's outcome. Exactly the fields below are persisted in
// checkpoints, so a resumed campaign reports completed jobs identically to
// the run that executed them.
type JobResult struct {
	Key string `json:"key"`
	// Attempts is how many runs the job consumed (1 = first attempt stood).
	Attempts int `json:"attempts"`
	// Value is the job's JSON-encoded return value — the last attempt's
	// partial value when the job ended degraded.
	Value json.RawMessage `json:"value,omitempty"`
	// Err is the final failing attempt's error message (empty on success).
	Err string `json:"err,omitempty"`
	// FaultKind is the machine-readable sim.FaultKind spelling behind Err,
	// when the failure was a typed simulator fault.
	FaultKind string `json:"fault_kind,omitempty"`
	// FaultHistory records the FaultKind of every failing attempt, in order
	// — kept even when a later attempt succeeds, so quarantine logic can see
	// that a point needed a re-run after (say) a corruption fault.
	FaultHistory []string `json:"fault_history,omitempty"`
	// Degraded marks a job whose failure was permanent or whose retry
	// budget ran out; the campaign continued without it.
	Degraded bool `json:"degraded,omitempty"`
	// Resumed marks a result loaded from a checkpoint rather than executed
	// in this run. Not persisted.
	Resumed bool `json:"-"`
	// Skipped marks a job the campaign cancellation prevented from
	// completing; it carries no value and is never checkpointed.
	Skipped bool `json:"-"`
}

// counters bundles the runner's telemetry; the zero value (nil registry) is
// inert.
type counters struct {
	started, completed, retried, resumed, degraded, skipped *telemetry.Counter
	backoffWaits, backoffNanos, checkpointWrites            *telemetry.Counter
	checkpointCorrupt, checkpointDegraded                   *telemetry.Counter
	attemptUS                                               *telemetry.Histogram
}

// attemptBounds bucket one attempt's wall time in µs — a tiny sweep point is
// sub-millisecond, a full-report point can run for seconds.
var attemptBounds = []uint64{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 60_000_000}

func newCounters(reg *telemetry.Registry) counters {
	if reg == nil {
		return counters{}
	}
	return counters{
		started:            reg.Counter("runner.jobs.started"),
		completed:          reg.Counter("runner.jobs.completed"),
		retried:            reg.Counter("runner.jobs.retried"),
		resumed:            reg.Counter("runner.jobs.resumed"),
		degraded:           reg.Counter("runner.jobs.degraded"),
		skipped:            reg.Counter("runner.jobs.skipped"),
		backoffWaits:       reg.Counter("runner.backoff.waits"),
		backoffNanos:       reg.Counter("runner.backoff.nanos"),
		checkpointWrites:   reg.Counter("runner.checkpoint.writes"),
		checkpointCorrupt:  reg.Counter("runner.checkpoint.corrupt"),
		checkpointDegraded: reg.Counter("runner.checkpoint.degraded"),
		attemptUS:          reg.Histogram("runner.attempt.us", attemptBounds),
	}
}

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func add(c *telemetry.Counter, n uint64) {
	if c != nil {
		c.Add(n)
	}
}

// Run executes the campaign and returns one JobResult per job, in job order.
// Degraded jobs do not fail the campaign; the returned error is non-nil only
// for campaign-level problems — duplicate keys, an unusable checkpoint, or
// cancellation (in which case the completed results are still returned and
// the checkpoint holds everything finished so far).
func Run(ctx context.Context, jobs []Job, o Options) ([]JobResult, error) {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	if o.Classify == nil {
		o.Classify = DefaultClassify
	}
	c := newCounters(o.Metrics)

	seen := make(map[string]int, len(jobs))
	for i, j := range jobs {
		if j.Key == "" {
			return nil, fmt.Errorf("runner: job %d has an empty key", i)
		}
		if prev, dup := seen[j.Key]; dup {
			return nil, fmt.Errorf("runner: jobs %d and %d share key %q", prev, i, j.Key)
		}
		seen[j.Key] = i
	}

	var cp *checkpointState
	if o.CheckpointPath != "" {
		fsys := o.FS
		if fsys == nil {
			fsys = vfs.OS()
		}
		var err error
		cp, err = openCheckpoint(o.CheckpointPath, o.Fingerprint, o.Resume, fsys, c, o.Logger)
		if err != nil {
			return nil, err
		}
	}

	results := make([]JobResult, len(jobs))
	var pending []int
	for i, j := range jobs {
		if cp != nil {
			if r, ok := cp.completed[j.Key]; ok {
				r.Resumed = true
				results[i] = r
				inc(c.resumed)
				continue
			}
		}
		pending = append(pending, i)
	}

	var (
		mu     sync.Mutex // guards cp writes and the OnCheckpoint hook
		cpDead bool       // a write failed; checkpointing is off for this run
	)
	record := func(idx int, r JobResult) {
		results[idx] = r
		if cp == nil || r.Skipped {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if cpDead {
			return
		}
		cp.completed[r.Key] = r
		if err := cp.write(); err != nil {
			// Degrade to no-checkpoint, never to a failed campaign: the
			// results in memory are intact, only resumability is lost.
			cpDead = true
			inc(c.checkpointDegraded)
			o.Logger.Ctx(ctx).Warn("checkpoint write failed; checkpointing disabled for this campaign (resume unavailable)",
				obslog.F("path", o.CheckpointPath), obslog.F("err", err))
			return
		}
		inc(c.checkpointWrites)
		if o.OnCheckpoint != nil {
			o.OnCheckpoint(len(cp.completed))
		}
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				if ctx.Err() != nil {
					inc(c.skipped)
					record(idx, JobResult{Key: jobs[idx].Key, Skipped: true})
					continue
				}
				record(idx, runJob(ctx, jobs[idx], o, c))
			}
		}()
	}
	for _, idx := range pending {
		work <- idx
	}
	close(work)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("runner: campaign canceled: %w", err)
	}
	return results, nil
}

// runJob supervises one job through its attempt budget.
func runJob(ctx context.Context, job Job, o Options, c counters) JobResult {
	r := JobResult{Key: job.Key}
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			inc(c.skipped)
			return JobResult{Key: job.Key, Skipped: true}
		}
		jctx, cancel := ctx, context.CancelFunc(func() {})
		if o.JobTimeout > 0 {
			jctx, cancel = context.WithTimeout(ctx, o.JobTimeout)
		}
		inc(c.started)
		began := time.Now()
		val, err := safeRun(jctx, job, attempt)
		if c.attemptUS != nil {
			c.attemptUS.Observe(uint64(time.Since(began).Microseconds()))
		}
		timedOut := jctx.Err() != nil && ctx.Err() == nil
		cancel()
		r.Attempts = attempt + 1

		if err == nil {
			raw, merr := json.Marshal(val)
			if merr != nil {
				err = fmt.Errorf("runner: job %q value not serialisable: %w", job.Key, merr)
			} else {
				r.Value = raw
				r.Err, r.FaultKind = "", "" // earlier attempts' failures are history
				inc(c.completed)
				return r
			}
		}
		if ctx.Err() != nil {
			// The campaign died under the job; its partial outcome must not
			// be recorded as a degraded point — a resume will re-run it.
			inc(c.skipped)
			return JobResult{Key: job.Key, Skipped: true}
		}

		r.Err = err.Error()
		r.FaultKind = ""
		if f, ok := sim.AsFault(err); ok {
			r.FaultKind = f.Kind.String()
		}
		if r.FaultKind != "" {
			r.FaultHistory = append(r.FaultHistory, r.FaultKind)
		}
		class := o.Classify(err)
		if timedOut {
			// A wall-clock deadline is scheduling noise, never evidence
			// about the job itself.
			class = ClassTransient
		}
		if class == ClassTransient && attempt+1 < o.MaxAttempts {
			inc(c.retried)
			d := Delay(o.BackoffBase, o.BackoffMax, o.Seed, job.Key, attempt)
			inc(c.backoffWaits)
			add(c.backoffNanos, uint64(d))
			o.Logger.Ctx(ctx).Warn("job retrying", obslog.F("job", job.Key),
				obslog.F("attempt", attempt+1), obslog.F("fault", r.FaultKind),
				obslog.F("backoff", d), obslog.F("err", err))
			sleepCtx(ctx, d, o.Sleep)
			continue
		}
		// Degraded: keep whatever partial value the last attempt produced.
		if val != nil {
			if raw, merr := json.Marshal(val); merr == nil {
				r.Value = raw
			}
		}
		r.Degraded = true
		inc(c.degraded)
		o.Logger.Ctx(ctx).Warn("job degraded", obslog.F("job", job.Key),
			obslog.F("attempts", r.Attempts), obslog.F("class", class.String()),
			obslog.F("err", err))
		return r
	}
}

// safeRun is the runner's own panic boundary on top of the Lab's: a job that
// panics past the Run*E recover (a bug in campaign glue, not simulated code)
// degrades that job instead of killing the whole campaign.
func safeRun(ctx context.Context, job Job, attempt int) (val any, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch v := r.(type) {
		case *sim.SimFault:
			err = v
		case error:
			err = fmt.Errorf("runner: job %q panicked: %w", job.Key, v)
		default:
			err = fmt.Errorf("runner: job %q panicked: %v", job.Key, v)
		}
	}()
	return job.Run(ctx, attempt)
}

// sleepCtx waits d or until the campaign is canceled, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration, sleep func(time.Duration)) {
	if sleep != nil {
		sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
