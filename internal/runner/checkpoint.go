package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"afterimage/internal/obslog"
	"afterimage/internal/vfs"
)

// CheckpointSchema versions the on-disk checkpoint format. A file carrying a
// different schema string is rejected rather than misread.
const CheckpointSchema = "afterimage-runner-checkpoint/1"

// checkpointFile is the persisted shape: which campaign this belongs to and
// every completed job keyed by its Key.
type checkpointFile struct {
	Schema      string               `json:"schema"`
	Fingerprint string               `json:"fingerprint"`
	Completed   map[string]JobResult `json:"completed"`
}

// checkpointState is the live handle: the completed map plus where to
// persist it and the filesystem to persist it through.
type checkpointState struct {
	path        string
	fingerprint string
	fs          vfs.FS
	completed   map[string]JobResult
}

// openCheckpoint prepares checkpoint persistence at path through fsys. With
// resume set, an existing file is loaded and validated (schema and campaign
// fingerprint must match); otherwise any stale file is ignored and
// overwritten by the first write.
//
// An unparseable file is damage, not disagreement — every write is atomic,
// so torn JSON means the file was hurt after the fact (disk fault, partial
// copy). Failing would wedge the campaign permanently (each retry re-hits
// the same parse error), so the damaged file is quarantined beside the
// original as <path>.corrupt and the campaign resumes fresh; determinism
// makes the recomputed results identical. Each quarantine bumps the corrupt
// counter (runner.checkpoint.corrupt; nil is inert) so silent-recovery
// events still surface in /metrics. A checkpoint the disk will not return
// (EIO) likewise degrades to no-resume — the campaign recomputes instead of
// failing on a read the retry loop could never fix — and bumps
// runner.checkpoint.degraded. Well-formed files that disagree (wrong schema,
// wrong fingerprint) still fail loudly: those are configuration errors a
// recompute would silently paper over.
func openCheckpoint(path, fingerprint string, resume bool, fsys vfs.FS, c counters, log *obslog.Logger) (*checkpointState, error) {
	st := &checkpointState{
		path:        path,
		fingerprint: fingerprint,
		fs:          fsys,
		completed:   make(map[string]JobResult),
	}
	if !resume {
		return st, nil
	}
	raw, err := fsys.ReadFile(path)
	if os.IsNotExist(err) {
		return st, nil // nothing to resume from; start fresh
	}
	if err != nil {
		inc(c.checkpointDegraded)
		log.Warn("checkpoint unreadable; resuming without it (campaign recomputes)",
			obslog.F("path", path), obslog.F("err", err))
		return st, nil
	}
	var f checkpointFile
	if err := json.Unmarshal(raw, &f); err != nil {
		if qerr := fsys.Rename(path, path+".corrupt"); qerr != nil {
			return nil, fmt.Errorf("runner: checkpoint %s is corrupt (%v) and could not be quarantined: %w", path, err, qerr)
		}
		inc(c.checkpointCorrupt)
		return st, nil
	}
	if f.Schema != CheckpointSchema {
		return nil, fmt.Errorf("runner: checkpoint %s has schema %q, want %q",
			path, f.Schema, CheckpointSchema)
	}
	if f.Fingerprint != fingerprint {
		return nil, fmt.Errorf("runner: checkpoint %s belongs to campaign %s, this campaign is %s (same options and seed required to resume)",
			path, f.Fingerprint, fingerprint)
	}
	if f.Completed != nil {
		st.completed = f.Completed
	}
	return st, nil
}

// write persists the completed map atomically and durably: marshal, write to
// a same-directory temp file, fsync the file, rename over the target, then
// fsync the parent directory. A kill between any two steps leaves either the
// previous checkpoint or the new one — never a torn file — and the directory
// fsync makes the rename itself survive power loss: without it the new name
// may still live only in the directory's in-memory metadata, and a crash
// after "rename succeeded" could resurface the old checkpoint (or none).
func (st *checkpointState) write() error {
	raw, err := json.MarshalIndent(checkpointFile{
		Schema:      CheckpointSchema,
		Fingerprint: st.fingerprint,
		Completed:   st.completed,
	}, "", "  ")
	if err != nil {
		return err
	}
	tmp := st.path + ".tmp"
	f, err := st.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		st.discardTemp(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		st.discardTemp(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		st.discardTemp(tmp)
		return err
	}
	if err := st.fs.Rename(tmp, st.path); err != nil {
		st.discardTemp(tmp)
		return err
	}
	return st.fs.SyncDir(filepath.Dir(st.path))
}

// discardTemp removes the temp file a failed checkpoint write left behind
// (best effort — a survivor is overwritten by the next write anyway).
func (st *checkpointState) discardTemp(tmp string) {
	if err := st.fs.Remove(tmp); err != nil && !os.IsNotExist(err) {
		_ = err // nothing further to do; the next write truncates it
	}
}

// SyncDir fsyncs a directory so a just-completed rename inside it is durable,
// not merely atomic. Kept as the package-level durability helper; it is the
// real-filesystem spelling of vfs.FS.SyncDir.
func SyncDir(dir string) error {
	return vfs.OS().SyncDir(dir)
}

// Fingerprint hashes an arbitrary JSON-encodable campaign description
// (options + seed) into a short stable identifier. Struct field order and
// sorted map keys make the encoding — and so the fingerprint — deterministic.
func Fingerprint(v any) string {
	raw, err := json.Marshal(v)
	if err != nil {
		// Unencodable descriptions still need a stable answer; fall back to
		// the error text, which is itself deterministic for a given type.
		raw = []byte(err.Error())
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:8])
}

// ReadCheckpoint loads the completed-job map from the checkpoint at path,
// validating the schema and (when non-empty) the campaign fingerprint — the
// replay harness's entry point into a campaign's persisted results.
func ReadCheckpoint(path, fingerprint string) (map[string]JobResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runner: read checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("runner: parse checkpoint %s: %w", path, err)
	}
	if f.Schema != CheckpointSchema {
		return nil, fmt.Errorf("runner: checkpoint %s has schema %q, want %q", path, f.Schema, CheckpointSchema)
	}
	if fingerprint != "" && f.Fingerprint != fingerprint {
		return nil, fmt.Errorf("runner: checkpoint %s belongs to campaign %s, want %s", path, f.Fingerprint, fingerprint)
	}
	if f.Completed == nil {
		f.Completed = make(map[string]JobResult)
	}
	return f.Completed, nil
}

// CompletedKeys lists the keys recorded in the checkpoint at path, sorted —
// a debugging/inspection helper for binaries and tests.
func CompletedKeys(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f checkpointFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(f.Completed))
	for k := range f.Completed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}
