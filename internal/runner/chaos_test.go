package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"afterimage/internal/sim"
)

// chaosJobs builds n deterministic jobs of which every third fails
// transiently on its first attempts — the campaign shape the kill/resume
// guarantee must hold for.
func chaosJobs(n int) []Job {
	var jobs []Job
	for i := 0; i < n; i++ {
		i := i
		jobs = append(jobs, Job{
			Key: fmt.Sprintf("point-%02d", i),
			Run: func(ctx context.Context, attempt int) (any, error) {
				if i%3 == 1 && attempt < i%DefaultMaxAttempts {
					return nil, &sim.SimFault{Kind: sim.FaultBudget, Cycle: uint64(i), Msg: "injected"}
				}
				// A value that depends on the attempt distinguishes "resumed
				// the recorded result" from "silently recomputed".
				return map[string]int{"i": i, "v": i*i + attempt}, nil
			},
		})
	}
	return jobs
}

// TestChaosKillResumeDeterministic kills a checkpointed campaign at random
// completion counts and resumes it, asserting the final results are
// byte-identical to a straight-through run every time.
func TestChaosKillResumeDeterministic(t *testing.T) {
	jobs := chaosJobs(18)
	straight, err := Run(context.Background(), jobs, Options{Workers: 4, Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	golden, _ := json.Marshal(straight)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		path := filepath.Join(t.TempDir(), "chaos.ckpt")
		fp := Fingerprint(map[string]any{"campaign": "chaos", "jobs": len(jobs)})
		killAfter := 1 + rng.Intn(len(jobs)-1)

		ctx, cancel := context.WithCancel(context.Background())
		_, err := Run(ctx, jobs, Options{
			Workers:        3,
			Sleep:          noSleep,
			CheckpointPath: path,
			Fingerprint:    fp,
			OnCheckpoint: func(completed int) {
				if completed >= killAfter {
					cancel() // the "kill -9" moment: no cleanup, no final write
				}
			},
		})
		cancel()
		if err == nil {
			// The kill landed after the last checkpoint write: the campaign
			// completed. Still a valid trial — resume below must be a no-op.
			t.Logf("trial %d: campaign outran the kill at %d", trial, killAfter)
		}

		resumed, err := Run(context.Background(), jobs, Options{
			Workers:        3,
			Sleep:          noSleep,
			CheckpointPath: path,
			Fingerprint:    fp,
			Resume:         true,
		})
		if err != nil {
			t.Fatalf("trial %d (kill at %d): resume failed: %v", trial, killAfter, err)
		}
		raw, _ := json.Marshal(resumed)
		if string(raw) != string(golden) {
			t.Fatalf("trial %d (kill at %d): resumed campaign diverged:\n%s\nvs straight-through\n%s",
				trial, killAfter, raw, golden)
		}
	}
}

// TestChaosTornWriteSurvival simulates a kill mid-write: the temp file holds
// garbage but the renamed checkpoint stays intact, and resume still works.
func TestChaosTornWriteSurvival(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	fp := Fingerprint("torn")
	jobs := chaosJobs(5)
	if _, err := Run(context.Background(), jobs[:3], Options{
		CheckpointPath: path, Fingerprint: fp, Sleep: noSleep,
	}); err != nil {
		t.Fatal(err)
	}
	// A crash mid-write leaves a partial temp file next to the checkpoint.
	if err := writeGarbage(path + ".tmp"); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), jobs, Options{
		CheckpointPath: path, Fingerprint: fp, Resume: true, Sleep: noSleep,
	})
	if err != nil {
		t.Fatalf("resume after torn write: %v", err)
	}
	for i, r := range res[:3] {
		if !r.Resumed {
			t.Fatalf("job %d lost to the torn write: %+v", i, r)
		}
	}
}

func writeGarbage(path string) error {
	return os.WriteFile(path, []byte(`{"schema": "afterimage-runner-ch`), 0o644)
}

// TestCheckpointWriteDurable pins the write sequence the power-loss guarantee
// rides on: after every checkpoint write the temp file is gone (renamed, not
// copied-and-forgotten), the target parses, and the parent-directory fsync
// succeeded — a failure there would have surfaced as a campaign error.
func TestCheckpointWriteDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "durable.ckpt")
	fp := Fingerprint("durable")
	if _, err := Run(context.Background(), chaosJobs(4), Options{
		CheckpointPath: path, Fingerprint: fp, Sleep: noSleep,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived the rename: %v", err)
	}
	keys, err := CompletedKeys(path)
	if err != nil {
		t.Fatalf("checkpoint unreadable after durable write: %v", err)
	}
	if len(keys) != 4 {
		t.Fatalf("checkpoint holds %d jobs, want 4", len(keys))
	}
	if err := SyncDir(dir); err != nil {
		t.Fatalf("SyncDir on a real directory: %v", err)
	}
	if err := SyncDir(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("SyncDir on a missing directory should fail")
	}
}
