package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"afterimage/internal/sim"
	"afterimage/internal/telemetry"
)

// noSleep makes backoff instantaneous in tests.
func noSleep(time.Duration) {}

// intJob returns a job whose value is a deterministic function of its index.
func intJob(i int) Job {
	return Job{
		Key: fmt.Sprintf("job-%02d", i),
		Run: func(ctx context.Context, attempt int) (any, error) {
			return map[string]int{"i": i, "sq": i * i}, nil
		},
	}
}

func TestResultsInJobOrderAcrossWorkerCounts(t *testing.T) {
	var jobs []Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, intJob(i))
	}
	var golden []byte
	for _, workers := range []int{1, 4, 12} {
		res, err := Run(context.Background(), jobs, Options{Workers: workers, Sleep: noSleep})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != len(jobs) {
			t.Fatalf("workers=%d: %d results", workers, len(res))
		}
		raw, _ := json.Marshal(res)
		if golden == nil {
			golden = raw
		} else if string(raw) != string(golden) {
			t.Fatalf("workers=%d produced different results:\n%s\nvs\n%s", workers, raw, golden)
		}
		for i, r := range res {
			if r.Key != jobs[i].Key || r.Attempts != 1 || r.Degraded {
				t.Fatalf("workers=%d: result %d = %+v", workers, i, r)
			}
		}
	}
}

func TestTransientFailureRetriesThenSucceeds(t *testing.T) {
	reg := telemetry.NewRegistry()
	job := Job{
		Key: "flaky",
		Run: func(ctx context.Context, attempt int) (any, error) {
			if attempt < 2 {
				return nil, &sim.SimFault{Kind: sim.FaultBudget, Msg: "simulated overrun"}
			}
			return "ok", nil
		},
	}
	res, err := Run(context.Background(), []Job{job}, Options{Sleep: noSleep, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Attempts != 3 || r.Degraded || r.Err != "" {
		t.Fatalf("result = %+v, want 3 clean attempts", r)
	}
	snap := reg.Snapshot()
	if v, _ := snap.Get("runner.jobs.retried"); v != 2 {
		t.Fatalf("runner.jobs.retried = %d, want 2", v)
	}
	if v, _ := snap.Get("runner.backoff.waits"); v != 2 {
		t.Fatalf("runner.backoff.waits = %d, want 2", v)
	}
	if v, _ := snap.Get("runner.jobs.completed"); v != 1 {
		t.Fatalf("runner.jobs.completed = %d, want 1", v)
	}
}

func TestPermanentFailureFailsFast(t *testing.T) {
	reg := telemetry.NewRegistry()
	calls := 0
	job := Job{
		Key: "misuse",
		Run: func(ctx context.Context, attempt int) (any, error) {
			calls++
			return nil, &sim.SimFault{Kind: sim.FaultAPIMisuse, Msg: "Run called re-entrantly"}
		},
	}
	res, err := Run(context.Background(), []Job{job}, Options{Sleep: noSleep, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if calls != 1 {
		t.Fatalf("permanent failure ran %d times, want 1", calls)
	}
	if !r.Degraded || r.Attempts != 1 || r.FaultKind != "api-misuse" {
		t.Fatalf("result = %+v", r)
	}
	if v, _ := reg.Snapshot().Get("runner.jobs.degraded"); v != 1 {
		t.Fatalf("runner.jobs.degraded = %d, want 1", v)
	}
}

func TestExhaustedRetriesKeepPartialValue(t *testing.T) {
	job := Job{
		Key: "doomed",
		Run: func(ctx context.Context, attempt int) (any, error) {
			return map[string]int{"bits": 7}, &sim.SimFault{Kind: sim.FaultSegfault, Msg: "boom"}
		},
	}
	res, err := Run(context.Background(), []Job{job}, Options{MaxAttempts: 2, Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if !r.Degraded || r.Attempts != 2 || r.FaultKind != "segfault" {
		t.Fatalf("result = %+v", r)
	}
	var v map[string]int
	if err := json.Unmarshal(r.Value, &v); err != nil || v["bits"] != 7 {
		t.Fatalf("partial value lost: %s (%v)", r.Value, err)
	}
}

func TestPanickingJobDegradesNotCrashes(t *testing.T) {
	job := Job{
		Key: "panicky",
		Run: func(ctx context.Context, attempt int) (any, error) {
			panic("glue bug")
		},
	}
	res, err := Run(context.Background(), []Job{job}, Options{Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if !r.Degraded || !strings.Contains(r.Err, "glue bug") {
		t.Fatalf("result = %+v", r)
	}
	if r.Attempts != 1 {
		t.Fatalf("non-fault panic retried %d times, want fail-fast", r.Attempts)
	}
}

func TestDuplicateAndEmptyKeysRejected(t *testing.T) {
	if _, err := Run(context.Background(), []Job{intJob(1), intJob(1)}, Options{}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	bad := Job{Run: func(ctx context.Context, attempt int) (any, error) { return nil, nil }}
	if _, err := Run(context.Background(), []Job{bad}, Options{}); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestCheckpointResumeSkipsCompleted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	fp := Fingerprint(map[string]int{"campaign": 1})
	var ran atomic.Int64
	mkJobs := func() []Job {
		var jobs []Job
		for i := 0; i < 6; i++ {
			i := i
			jobs = append(jobs, Job{
				Key: fmt.Sprintf("job-%02d", i),
				Run: func(ctx context.Context, attempt int) (any, error) {
					ran.Add(1)
					return i * 10, nil
				},
			})
		}
		return jobs
	}
	first, err := Run(context.Background(), mkJobs(), Options{
		CheckpointPath: path, Fingerprint: fp, Sleep: noSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 6 {
		t.Fatalf("first run executed %d jobs", ran.Load())
	}
	keys, err := CompletedKeys(path)
	if err != nil || len(keys) != 6 {
		t.Fatalf("checkpoint keys = %v (%v)", keys, err)
	}

	reg := telemetry.NewRegistry()
	second, err := Run(context.Background(), mkJobs(), Options{
		CheckpointPath: path, Fingerprint: fp, Resume: true, Sleep: noSleep, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 6 {
		t.Fatalf("resume re-executed jobs: %d total runs", ran.Load())
	}
	if v, _ := reg.Snapshot().Get("runner.jobs.resumed"); v != 6 {
		t.Fatalf("runner.jobs.resumed = %d", v)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Fatalf("resumed results differ:\n%s\nvs\n%s", a, b)
	}
	for _, r := range second {
		if !r.Resumed {
			t.Fatalf("result %+v not marked resumed", r)
		}
	}
}

func TestCheckpointFingerprintMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	if _, err := Run(context.Background(), []Job{intJob(0)}, Options{
		CheckpointPath: path, Fingerprint: "aaaa", Sleep: noSleep,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), []Job{intJob(0)}, Options{
		CheckpointPath: path, Fingerprint: "bbbb", Resume: true, Sleep: noSleep,
	}); err == nil || !strings.Contains(err.Error(), "campaign") {
		t.Fatalf("foreign checkpoint accepted: %v", err)
	}
}

func TestCheckpointSchemaMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	raw, _ := json.Marshal(checkpointFile{Schema: "afterimage-runner-checkpoint/999", Fingerprint: "x"})
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), []Job{intJob(0)}, Options{
		CheckpointPath: path, Fingerprint: "x", Resume: true, Sleep: noSleep,
	}); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("unknown schema accepted: %v", err)
	}
}

func TestCancellationSkipsWithoutCheckpointing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var jobs []Job
	for i := 0; i < 8; i++ {
		i := i
		jobs = append(jobs, Job{
			Key: fmt.Sprintf("job-%02d", i),
			Run: func(jctx context.Context, attempt int) (any, error) {
				if i == 2 {
					cancel()
					return nil, jctx.Err()
				}
				return i, nil
			},
		})
	}
	res, err := Run(ctx, jobs, Options{CheckpointPath: path, Fingerprint: "fp", Sleep: noSleep})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled campaign returned %v", err)
	}
	skipped := 0
	for _, r := range res {
		if r.Skipped {
			skipped++
			if r.Value != nil || r.Degraded {
				t.Fatalf("skipped job carries state: %+v", r)
			}
		}
	}
	if skipped == 0 {
		t.Fatal("no job was skipped by cancellation")
	}
	keys, err := CompletedKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys)+skipped != len(jobs) {
		t.Fatalf("checkpoint holds %d keys with %d skipped of %d jobs", len(keys), skipped, len(jobs))
	}
}

func TestJobTimeoutRetriesAsTransient(t *testing.T) {
	slow := true
	job := Job{
		Key: "slowpoke",
		Run: func(ctx context.Context, attempt int) (any, error) {
			if slow {
				slow = false
				<-ctx.Done() // simulate the watchdog killing the run at the deadline
				return nil, fmt.Errorf("deadline: %w", ctx.Err())
			}
			return "fast", nil
		},
	}
	res, err := Run(context.Background(), []Job{job}, Options{
		JobTimeout: 20 * time.Millisecond, Sleep: noSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Degraded || r.Attempts != 2 {
		t.Fatalf("timed-out job not retried: %+v", r)
	}
}

func TestDelayDeterministicAndBounded(t *testing.T) {
	base, max := 10*time.Millisecond, 160*time.Millisecond
	for attempt := 0; attempt < 10; attempt++ {
		a := Delay(base, max, 42, "job-a", attempt)
		b := Delay(base, max, 42, "job-a", attempt)
		if a != b {
			t.Fatalf("attempt %d: %v != %v", attempt, a, b)
		}
		if a < base/2 || a > max {
			t.Fatalf("attempt %d: delay %v outside [base/2, max]", attempt, a)
		}
	}
	if Delay(base, max, 42, "job-a", 0) == Delay(base, max, 42, "job-b", 0) &&
		Delay(base, max, 42, "job-a", 1) == Delay(base, max, 42, "job-b", 1) {
		t.Fatal("jitter does not separate jobs")
	}
}

func TestFingerprintStable(t *testing.T) {
	type desc struct {
		Kind string
		Seed int64
	}
	a := Fingerprint(desc{"sweep", 1})
	if a != Fingerprint(desc{"sweep", 1}) {
		t.Fatal("equal descriptions produced different fingerprints")
	}
	if a == Fingerprint(desc{"sweep", 2}) {
		t.Fatal("different seeds share a fingerprint")
	}
}
