package runner

import (
	"encoding/binary"
	"hash/fnv"
	"time"
)

// Delay computes the backoff before re-running a job whose attempt (0-based)
// just failed: capped exponential growth from base, scaled by a
// deterministic jitter in [0.5, 1.0) drawn from (seed, key, attempt). Equal
// inputs always produce the same delay, so a replayed campaign waits — and
// therefore logs and meters — identically; distinct jobs retrying after the
// same fault storm still decorrelate.
func Delay(base, max time.Duration, seed int64, key string, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	if max < base {
		max = base
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return time.Duration(float64(d) * jitter(seed, key, attempt))
}

// jitter maps (seed, key, attempt) to [0.5, 1.0) via FNV-1a.
func jitter(seed int64, key string, attempt int) float64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(attempt))
	h.Write(buf[:])
	h.Write([]byte(key))
	return 0.5 + 0.5*float64(h.Sum64()%(1<<20))/float64(1<<20)
}
