package runner

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"afterimage/internal/telemetry"
	"afterimage/internal/vfs"
)

func counterValue(t *testing.T, reg *telemetry.Registry, name string) uint64 {
	t.Helper()
	v, _ := reg.Snapshot().Get(name)
	return v
}

// TestCheckpointWriteFailureDegradesNotFails: a disk that refuses every
// checkpoint write costs the campaign its resumability and nothing else —
// every job completes, Run returns no error, and the degradation is counted.
func TestCheckpointWriteFailureDegradesNotFails(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, intJob(i))
	}
	res, err := Run(context.Background(), jobs, Options{
		Workers:        3,
		CheckpointPath: filepath.Join(dir, "campaign.ckpt"),
		FS:             vfs.NewFaultFS(vfs.FaultConfig{Seed: 11, EIORate: 1}, nil),
		Metrics:        reg,
		Sleep:          noSleep,
	})
	if err != nil {
		t.Fatalf("campaign failed on checkpoint-write faults: %v", err)
	}
	for i, r := range res {
		if r.Key != jobs[i].Key || r.Degraded || r.Skipped {
			t.Fatalf("result %d = %+v, want completed", i, r)
		}
	}
	if v := counterValue(t, reg, "runner.checkpoint.degraded"); v != 1 {
		t.Fatalf("runner.checkpoint.degraded = %d, want 1 (disabled after first failure)", v)
	}
	if v := counterValue(t, reg, "runner.checkpoint.writes"); v != 0 {
		t.Fatalf("runner.checkpoint.writes = %d, want 0", v)
	}
	// No checkpoint file and no temp litter survive the degraded run.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("failed checkpoint write leaked temp file %s", e.Name())
		}
	}
}

// TestCheckpointRenameFailureDegradesAndCleansTemp: a fault at the publish
// step (rename) also degrades cleanly and removes the fully-written temp.
func TestCheckpointRenameFailureDegradesAndCleansTemp(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	res, err := Run(context.Background(), []Job{intJob(0), intJob(1)}, Options{
		CheckpointPath: filepath.Join(dir, "campaign.ckpt"),
		FS:             vfs.NewFaultFS(vfs.FaultConfig{Seed: 11, RenameFailRate: 1}, nil),
		Metrics:        reg,
		Sleep:          noSleep,
	})
	if err != nil {
		t.Fatalf("campaign failed on checkpoint rename fault: %v", err)
	}
	if len(res) != 2 || res[0].Degraded || res[1].Degraded {
		t.Fatalf("results = %+v, want 2 completed", res)
	}
	if v := counterValue(t, reg, "runner.checkpoint.degraded"); v != 1 {
		t.Fatalf("runner.checkpoint.degraded = %d, want 1", v)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("failed checkpoint publish leaked temp file %s", e.Name())
		}
	}
}

// failReadFS fails every ReadFile with a disk error — the shape of a
// checkpoint the disk holds but will not return.
type failReadFS struct {
	vfs.FS
}

func (f failReadFS) ReadFile(string) ([]byte, error) {
	return nil, errors.New("injected: read error")
}

// TestCheckpointUnreadableDegradesToNoResume: a resume whose checkpoint read
// fails with a real I/O error (not absence) recomputes from scratch instead
// of failing — determinism makes the recomputed results identical.
func TestCheckpointUnreadableDegradesToNoResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.ckpt")
	fp := Fingerprint(map[string]int{"seed": 1})
	jobs := []Job{intJob(0), intJob(1), intJob(2)}

	// First run populates a real checkpoint.
	if _, err := Run(context.Background(), jobs, Options{
		CheckpointPath: path, Fingerprint: fp, Sleep: noSleep,
	}); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	res, err := Run(context.Background(), jobs, Options{
		CheckpointPath: path, Fingerprint: fp, Resume: true,
		FS:      failReadFS{vfs.OS()},
		Metrics: reg,
		Sleep:   noSleep,
	})
	if err != nil {
		t.Fatalf("campaign failed on unreadable checkpoint: %v", err)
	}
	for i, r := range res {
		if r.Resumed {
			t.Fatalf("result %d marked resumed with an unreadable checkpoint", i)
		}
	}
	if v := counterValue(t, reg, "runner.jobs.resumed"); v != 0 {
		t.Fatalf("runner.jobs.resumed = %d, want 0", v)
	}
	if v := counterValue(t, reg, "runner.checkpoint.degraded"); v != 1 {
		t.Fatalf("runner.checkpoint.degraded = %d, want 1", v)
	}
}

// TestCheckpointFaultsPreserveByteIdentity: the same campaign run over a
// clean disk and over a checkpoint-hostile disk marshals to identical bytes —
// checkpoint degradation is invisible in the results.
func TestCheckpointFaultsPreserveByteIdentity(t *testing.T) {
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, intJob(i))
	}
	clean, err := Run(context.Background(), jobs, Options{Workers: 4, Sleep: noSleep})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(context.Background(), jobs, Options{
		Workers:        4,
		CheckpointPath: filepath.Join(t.TempDir(), "c.ckpt"),
		FS:             vfs.NewFaultFS(vfs.FaultConfig{Seed: 4, ENOSPCRate: 1}, nil),
		Sleep:          noSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(clean)
	b, _ := json.Marshal(faulty)
	if string(a) != string(b) {
		t.Fatalf("checkpoint faults changed campaign results:\nclean  %s\nfaulty %s", a, b)
	}
}

// TestCheckpointIntermittentFaultsKeepCheckpointValid: under mixed sub-1
// fault rates some checkpoint writes land and some fail; whatever state the
// file is in, it is either absent or a complete, parseable checkpoint —
// atomic publication holds under injected faults.
func TestCheckpointIntermittentFaultsKeepCheckpointValid(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.ckpt")
	fp := Fingerprint("intermittent")
	var jobs []Job
	for i := 0; i < 10; i++ {
		jobs = append(jobs, intJob(i))
	}
	_, err := Run(context.Background(), jobs, Options{
		CheckpointPath: path, Fingerprint: fp,
		FS:    vfs.NewFaultFS(vfs.FaultConfig{Seed: 21, EIORate: 0.4, RenameFailRate: 0.4}, nil),
		Sleep: noSleep,
	})
	if err != nil {
		t.Fatalf("campaign failed under intermittent checkpoint faults: %v", err)
	}
	if _, err := os.Stat(path); err == nil {
		if _, rerr := ReadCheckpoint(path, fp); rerr != nil {
			t.Fatalf("surviving checkpoint is not parseable: %v", rerr)
		}
	} else if !os.IsNotExist(err) {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("intermittent faults leaked temp file %s", e.Name())
		}
	}
}
