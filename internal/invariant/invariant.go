// Package invariant is the registry behind Machine.Audit: a named, ordered
// collection of structural checkers over simulator components. Each checker
// deep-walks one component's state — prefetcher table bounds, cache
// inclusivity and replacement-policy consistency, TLB↔page-table coherence,
// scheduler bookkeeping — and reports every rule it finds violated. The
// registry imports nothing, so any package can expose an audit without
// dependency cycles; the machine wires the checkers up at construction.
package invariant

import "fmt"

// Violation is one broken structural rule, attributed to the component whose
// checker found it.
type Violation struct {
	// Component is the registry name of the checker ("prefetcher.ipstride",
	// "cache.hierarchy", "tlb", "sched").
	Component string
	// Detail describes the violated rule and the offending state.
	Detail string
}

// String renders the violation for fault messages and reports.
func (v Violation) String() string { return v.Component + ": " + v.Detail }

// CheckFunc deep-checks one component and returns every violation found
// (nil/empty when the component is structurally sound). Checkers must be
// read-only: an audit never mutates simulated state.
type CheckFunc func() []Violation

// Registry holds the named checkers in registration order.
type Registry struct {
	names  []string
	checks map[string]CheckFunc
}

// New builds an empty registry.
func New() *Registry { return &Registry{checks: make(map[string]CheckFunc)} }

// Register adds (or replaces) the checker for a component name. Order of
// first registration is preserved by Audit, so violation lists are stable.
func (r *Registry) Register(name string, check CheckFunc) {
	if _, ok := r.checks[name]; !ok {
		r.names = append(r.names, name)
	}
	r.checks[name] = check
}

// Components lists the registered checker names in registration order.
func (r *Registry) Components() []string { return append([]string(nil), r.names...) }

// Audit runs every checker in registration order and concatenates the
// violations.
func (r *Registry) Audit() []Violation {
	var out []Violation
	for _, name := range r.names {
		out = append(out, r.checks[name]()...)
	}
	return out
}

// Violationf builds a violation with a formatted detail — sugar for checker
// implementations.
func Violationf(component, format string, args ...interface{}) Violation {
	return Violation{Component: component, Detail: fmt.Sprintf(format, args...)}
}
