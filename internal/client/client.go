// Package client is the typed HTTP client for the campaign service
// (internal/server) — the interface the chaos and soak tests drive, and the
// reference for anyone scripting the service. It knows the service's
// backpressure protocol: SubmitWait honours 429/503 Retry-After hints with
// capped retries, so a shedding or draining server slows clients down
// instead of failing them.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"afterimage/internal/server"
)

// Client talks to one campaign service.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
	// Correlation, when set, rides every Submit as the X-Campaign-Id header:
	// the server threads it through all layers and the campaign's span tree
	// carries it. Empty lets the server mint one (echoed on the response).
	Correlation string
	// MaxRetryWait caps how long SubmitWait sleeps on any one Retry-After
	// hint (default 5s). A misconfigured or hostile server can send
	// arbitrarily large hints; without a cap one bad header parks the client
	// for hours. Sleeps remain context-cancellable regardless.
	MaxRetryWait time.Duration
}

// New builds a client for the service at base.
func New(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Result is one submission outcome.
type Result struct {
	// Key is the campaign's content address (from X-Afterimage-Key).
	Key string
	// Source is hit | miss | join | degraded (from X-Afterimage-Cache).
	// "degraded" means the result was computed but its cache write was shed
	// (disk fault); the bytes are identical to a cached run's.
	Source string
	// CorrelationID is the campaign correlation ID the server echoed (from
	// X-Campaign-Id) — the client's own if it sent one, minted otherwise.
	CorrelationID string
	// Body is the SweepResult JSON, byte-for-byte as the server stores it.
	Body []byte
}

// RetryableError is a 429/503/504 response: the server asked the client to
// come back later.
type RetryableError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

// Error formats the backpressure response.
func (e *RetryableError) Error() string {
	return fmt.Sprintf("server busy (%d, retry after %s): %s", e.Status, e.RetryAfter, e.Msg)
}

// Submit posts one campaign spec and returns the result. Backpressure
// (429/503/504) surfaces as *RetryableError; validation failures and other
// errors are terminal.
func (c *Client) Submit(ctx context.Context, spec server.CampaignSpec) (*Result, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: encode spec: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/campaigns", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.Correlation != "" {
		req.Header.Set(server.HeaderCampaignID, c.Correlation)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: read response: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return &Result{
			Key:           resp.Header.Get(server.HeaderKey),
			Source:        resp.Header.Get(server.HeaderCache),
			CorrelationID: resp.Header.Get(server.HeaderCampaignID),
			Body:          body,
		}, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return nil, &RetryableError{
			Status:     resp.StatusCode,
			Msg:        errMsg(body),
			RetryAfter: retryAfter(resp),
		}
	default:
		return nil, fmt.Errorf("client: %s: %s", resp.Status, errMsg(body))
	}
}

// SubmitWait submits with retries: every *RetryableError is honoured by
// sleeping the server's Retry-After hint (clamped to [50ms, MaxRetryWait])
// and resubmitting, until ctx expires or attempts run out. Because
// interrupted campaigns checkpoint, each retry resumes prior progress rather
// than restarting.
func (c *Client) SubmitWait(ctx context.Context, spec server.CampaignSpec, attempts int) (*Result, error) {
	if attempts <= 0 {
		attempts = 10
	}
	maxWait := c.MaxRetryWait
	if maxWait <= 0 {
		maxWait = 5 * time.Second
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		res, err := c.Submit(ctx, spec)
		if err == nil {
			return res, nil
		}
		lastErr = err
		var re *RetryableError
		if !isRetryable(err, &re) {
			return nil, err
		}
		wait := re.RetryAfter
		if wait < 50*time.Millisecond {
			wait = 50 * time.Millisecond
		}
		if wait > maxWait {
			wait = maxWait
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, fmt.Errorf("client: %w (last: %v)", ctx.Err(), lastErr)
		case <-t.C:
		}
	}
	return nil, fmt.Errorf("client: retries exhausted: %w", lastErr)
}

// isRetryable matches *RetryableError and transport-level failures (a
// draining listener may refuse the connection between Drain and restart).
func isRetryable(err error, out **RetryableError) bool {
	var re *RetryableError
	if errors.As(err, &re) {
		*out = re
		return true
	}
	// Connection errors during restart windows: retry with a default hint.
	if strings.Contains(err.Error(), "connection refused") ||
		strings.Contains(err.Error(), "EOF") {
		*out = &RetryableError{Status: 0, Msg: err.Error(), RetryAfter: 100 * time.Millisecond}
		return true
	}
	return false
}

// Get fetches a cached result by key: (result, true, nil) on a hit,
// (nil, false, nil) when absent or still running.
func (c *Client) Get(ctx context.Context, key string) (*Result, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/campaigns/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return &Result{Key: key, Source: resp.Header.Get(server.HeaderCache), Body: body}, true, nil
	case http.StatusAccepted, http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("client: %s: %s", resp.Status, errMsg(body))
	}
}

// Events streams the campaign's ProgressEvents, invoking fn per event until
// the stream ends, fn returns false, or ctx expires.
func (c *Client) Events(ctx context.Context, key string, fn func(server.ProgressEvent) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/campaigns/"+key+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("client: events: %s: %s", resp.Status, errMsg(body))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev server.ProgressEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return fmt.Errorf("client: events: bad frame: %w", err)
		}
		if !fn(ev) {
			return nil
		}
	}
	return sc.Err()
}

// Metrics fetches the /metrics text snapshot (legacy "name value" format).
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// Prometheus fetches /metrics in the Prometheus 0.0.4 text exposition,
// negotiated via the Accept header exactly as a real scraper would.
func (c *Client) Prometheus(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	req.Header.Set("Accept", "text/plain; version=0.0.4")
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// Trace fetches a completed campaign's span record (one JSONL line) from
// GET /v1/campaigns/{key}/trace. (nil, false, nil) means the server retains
// no trace for the key — never completed here, or evicted.
func (c *Client) Trace(ctx context.Context, key string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/campaigns/"+key+"/trace", nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("client: trace: %s: %s", resp.Status, errMsg(body))
	}
}

// WaitReady polls /healthz until the server answers or ctx expires — the
// restart-detection primitive the soak tests use.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := c.http().Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		t := time.NewTimer(25 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("client: server not ready: %w", ctx.Err())
		case <-t.C:
		}
	}
}

func retryAfter(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return time.Second
}

func errMsg(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}
