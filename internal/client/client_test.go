package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"afterimage/internal/client"
	"afterimage/internal/server"
)

// TestSubmitWaitHonoursRetryAfter: a shedding server's 429s are retried
// after the hinted delay until the work is admitted.
func TestSubmitWaitHonoursRetryAfter(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error": "queue full"}`)
			return
		}
		w.Header().Set(server.HeaderKey, "k")
		w.Header().Set(server.HeaderCache, "miss")
		fmt.Fprint(w, `{"points": []}`)
	}))
	defer hs.Close()

	cl := client.New(hs.URL)
	start := time.Now()
	res, err := cl.SubmitWait(context.Background(), server.CampaignSpec{Attack: "v1-thread"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d submissions, want 3", got)
	}
	if res.Source != "miss" || res.Key != "k" {
		t.Fatalf("result = %+v", res)
	}
	// Two 429s at Retry-After: 1s each must have delayed at least ~2s.
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Fatalf("retries ignored Retry-After: total elapsed %s", elapsed)
	}
}

// TestSubmitWaitTerminalErrorNotRetried: validation failures are not
// backpressure — SubmitWait must fail immediately.
func TestSubmitWaitTerminalErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error": "unknown attack"}`)
	}))
	defer hs.Close()

	_, err := client.New(hs.URL).SubmitWait(context.Background(), server.CampaignSpec{}, 5)
	if err == nil || calls.Load() != 1 {
		t.Fatalf("terminal 400 retried: err=%v calls=%d", err, calls.Load())
	}
	var re *client.RetryableError
	if errors.As(err, &re) {
		t.Fatalf("400 classified as retryable: %v", err)
	}
}

// TestSubmitWaitAttemptsExhausted: a permanently shedding server exhausts
// the attempt budget and surfaces the last backpressure error.
func TestSubmitWaitAttemptsExhausted(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error": "draining"}`)
	}))
	defer hs.Close()

	_, err := client.New(hs.URL).SubmitWait(context.Background(), server.CampaignSpec{Attack: "v1-thread"}, 2)
	var re *client.RetryableError
	if !errors.As(err, &re) || re.Status != http.StatusServiceUnavailable {
		t.Fatalf("exhausted retries: got %v, want wrapped 503", err)
	}
}

// TestEventsParsesSSEStream: the SSE line protocol round-trips
// ProgressEvents, and fn returning false stops the stream early.
func TestEventsParsesSSEStream(t *testing.T) {
	key := "ab12"
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "data: {\"type\":\"started\",\"key\":%q,\"total\":2}\n\n", key)
		fmt.Fprintf(w, "data: {\"type\":\"point\",\"key\":%q,\"completed\":1,\"total\":2}\n\n", key)
		fmt.Fprintf(w, "data: {\"type\":\"done\",\"key\":%q,\"completed\":2,\"total\":2}\n\n", key)
	}))
	defer hs.Close()

	var got []server.ProgressEvent
	err := client.New(hs.URL).Events(context.Background(), key, func(ev server.ProgressEvent) bool {
		got = append(got, ev)
		return ev.Type != "done"
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Type != "started" || got[1].Completed != 1 || got[2].Type != "done" {
		t.Fatalf("events = %+v", got)
	}
}
