package ecc

import (
	"bytes"
	"testing"
)

// FuzzHammingInterleaveRoundTrip drives the covert channel's full forward-
// error-correction pipeline — Hamming(7,4) encode, burst interleave, 5-bit
// symbol packing, and all three inverses — over arbitrary payloads and
// interleave depths. Two properties must hold for every input:
//
//  1. A clean channel round-trips the payload exactly, with zero
//     corrections.
//  2. Losing one whole 5-bit symbol (a burst of 5 adjacent channel bits)
//     is correctable whenever the interleaver can spread it across
//     codewords (depth >= 5 and a block width of at least one codeword).
func FuzzHammingInterleaveRoundTrip(f *testing.F) {
	f.Add([]byte("afterimage covert channel payload"), 35, 0)
	f.Add([]byte{}, 1, 0)
	f.Add([]byte{0xFF, 0x00, 0xA5}, 2, 1)
	f.Add([]byte{0x42}, 64, 3)
	f.Fuzz(func(t *testing.T, data []byte, depth, lostSym int) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		if depth < 0 {
			depth = -depth
		}
		depth = depth%64 + 1

		bits := EncodeBits(data)
		if len(bits) != 14*len(data) {
			t.Fatalf("EncodeBits: %d bits for %d bytes, want %d", len(bits), len(data), 14*len(data))
		}
		tx := PackSymbols(Interleave(bits, depth))

		// Property 1: clean round trip, no corrections.
		rx := Deinterleave(UnpackSymbols(tx), depth, len(bits))
		got, corrections := DecodeBits(rx)
		if corrections != 0 {
			t.Fatalf("clean channel applied %d corrections", corrections)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("clean round trip: got %x, want %x (depth %d)", got, data, depth)
		}

		// Property 2: one lost symbol is a burst of 5 adjacent interleaved
		// bits; with depth >= 5 they land in 5 distinct rows, and with a
		// block width >= 7 no two of those rows share a codeword.
		width := (len(bits) + depth - 1) / depth
		if len(tx) == 0 || depth < 5 || width < 7 {
			return
		}
		if lostSym < 0 {
			lostSym = -lostSym
		}
		lostSym %= len(tx)
		dirty := append([]uint8(nil), tx...)
		dirty[lostSym] = ^dirty[lostSym] & 0x1F // flip all 5 bits
		rx = Deinterleave(UnpackSymbols(dirty), depth, len(bits))
		got, corrections = DecodeBits(rx)
		if !bytes.Equal(got, data) {
			t.Fatalf("burst of one lost symbol (idx %d, depth %d, width %d) not corrected: got %x, want %x",
				lostSym, depth, width, got, data)
		}
		if corrections > 5 {
			t.Fatalf("one lost symbol cost %d corrections, want <= 5", corrections)
		}
	})
}
