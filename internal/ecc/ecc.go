// Package ecc provides the forward-error-correction layer this library
// adds on top of the paper's covert channel: Hamming(7,4) codewords plus a
// block interleaver. A lost covert symbol corrupts five adjacent bits;
// interleaving spreads those bursts across many codewords so each picks up
// at most one flipped bit, which Hamming corrects. This trades 7/4 rate
// for reliability — relevant for the multi-entry configurations whose raw
// error rate exceeds 25 % (§7.2).
package ecc

// Hamming(7,4) with bit order [p1 p2 d1 p3 d2 d3 d4] (1-indexed positions
// 1..7; parity bits at powers of two). Syndromes directly index the flipped
// position.

// encodeNibble produces the 7 code bits of a 4-bit value d3..d0.
func encodeNibble(n byte) [7]bool {
	d1 := n>>3&1 == 1
	d2 := n>>2&1 == 1
	d3 := n>>1&1 == 1
	d4 := n&1 == 1
	p1 := d1 != d2 != d4 // parity over positions 3,5,7
	p2 := d1 != d3 != d4 // positions 3,6,7
	p3 := d2 != d3 != d4 // positions 5,6,7
	return [7]bool{p1, p2, d1, p3, d2, d3, d4}
}

// decodeNibble corrects up to one flipped bit and returns the data nibble
// and whether a correction was applied.
func decodeNibble(c [7]bool) (byte, bool) {
	s1 := c[0] != c[2] != c[4] != c[6]
	s2 := c[1] != c[2] != c[5] != c[6]
	s3 := c[3] != c[4] != c[5] != c[6]
	syndrome := 0
	if s1 {
		syndrome |= 1
	}
	if s2 {
		syndrome |= 2
	}
	if s3 {
		syndrome |= 4
	}
	corrected := false
	if syndrome != 0 {
		c[syndrome-1] = !c[syndrome-1]
		corrected = true
	}
	var n byte
	if c[2] {
		n |= 8
	}
	if c[4] {
		n |= 4
	}
	if c[5] {
		n |= 2
	}
	if c[6] {
		n |= 1
	}
	return n, corrected
}

// EncodeBits expands data into a Hamming(7,4)-coded bit stream (two
// codewords per byte, high nibble first).
func EncodeBits(data []byte) []bool {
	out := make([]bool, 0, len(data)*14)
	for _, b := range data {
		for _, nib := range [2]byte{b >> 4, b & 0xF} {
			cw := encodeNibble(nib)
			out = append(out, cw[:]...)
		}
	}
	return out
}

// DecodeBits reverses EncodeBits, correcting single-bit errors per
// codeword. It returns the data and the number of corrections applied.
// Trailing bits that do not fill a codeword are ignored.
func DecodeBits(bits []bool) (data []byte, corrections int) {
	nCW := len(bits) / 7
	nibbles := make([]byte, 0, nCW)
	for i := 0; i < nCW; i++ {
		var cw [7]bool
		copy(cw[:], bits[i*7:(i+1)*7])
		n, fixed := decodeNibble(cw)
		if fixed {
			corrections++
		}
		nibbles = append(nibbles, n)
	}
	for i := 0; i+1 < len(nibbles); i += 2 {
		data = append(data, nibbles[i]<<4|nibbles[i+1])
	}
	return data, corrections
}

// Interleave writes bits column-major into a depth×width block so a burst
// of up to `depth` adjacent channel errors lands in distinct codewords.
// The input is padded with false to a multiple of depth.
func Interleave(bits []bool, depth int) []bool {
	if depth <= 1 {
		return append([]bool(nil), bits...)
	}
	width := (len(bits) + depth - 1) / depth
	out := make([]bool, depth*width)
	for i, b := range bits {
		row := i / width
		col := i % width
		out[col*depth+row] = b
	}
	return out
}

// Deinterleave reverses Interleave for the given original length.
func Deinterleave(bits []bool, depth, origLen int) []bool {
	if depth <= 1 {
		out := append([]bool(nil), bits...)
		if len(out) > origLen {
			out = out[:origLen]
		}
		return out
	}
	width := (origLen + depth - 1) / depth
	out := make([]bool, origLen)
	for i := range out {
		row := i / width
		col := i % width
		idx := col*depth + row
		if idx < len(bits) {
			out[i] = bits[idx]
		}
	}
	return out
}

// PackSymbols folds a bit stream into 5-bit covert symbols (padding the
// tail with zeros).
func PackSymbols(bits []bool) []uint8 {
	var out []uint8
	for i := 0; i < len(bits); i += 5 {
		var s uint8
		for k := 0; k < 5; k++ {
			s <<= 1
			if i+k < len(bits) && bits[i+k] {
				s |= 1
			}
		}
		out = append(out, s)
	}
	return out
}

// UnpackSymbols expands 5-bit symbols back into a bit stream.
func UnpackSymbols(syms []uint8) []bool {
	out := make([]bool, 0, len(syms)*5)
	for _, s := range syms {
		for k := 4; k >= 0; k-- {
			out = append(out, s>>uint(k)&1 == 1)
		}
	}
	return out
}
