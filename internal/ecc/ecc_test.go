package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripClean(t *testing.T) {
	f := func(data []byte) bool {
		got, corr := DecodeBits(EncodeBits(data))
		return bytes.Equal(got, data) && corr == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEverySingleBitErrorCorrected(t *testing.T) {
	data := []byte{0xA5, 0x3C, 0x00, 0xFF}
	clean := EncodeBits(data)
	for i := range clean {
		bits := append([]bool(nil), clean...)
		bits[i] = !bits[i]
		got, corr := DecodeBits(bits)
		if !bytes.Equal(got, data) {
			t.Fatalf("flip at %d not corrected", i)
		}
		if corr != 1 {
			t.Fatalf("flip at %d: corrections = %d", i, corr)
		}
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	f := func(data []byte, depthRaw uint8) bool {
		depth := int(depthRaw)%48 + 1
		bits := EncodeBits(data)
		back := Deinterleave(Interleave(bits, depth), depth, len(bits))
		if len(back) != len(bits) {
			return false
		}
		for i := range bits {
			if bits[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBurstErrorSurvivesInterleaving is the design property: a 5-bit burst
// (one lost covert symbol) lands in 5 distinct codewords after
// deinterleaving, so Hamming fixes all of it.
func TestBurstErrorSurvivesInterleaving(t *testing.T) {
	data := make([]byte, 40)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	const depth = 35 // ≥ 5·7: a symbol burst maps to one bit per codeword
	bits := EncodeBits(data)
	tx := Interleave(bits, depth)
	// Corrupt one aligned 5-bit burst (a wrongly decoded covert symbol).
	start := 70
	for k := 0; k < 5; k++ {
		tx[start+k] = !tx[start+k]
	}
	rx := Deinterleave(tx, depth, len(bits))
	got, corr := DecodeBits(rx)
	if !bytes.Equal(got, data) {
		t.Fatal("burst not corrected")
	}
	if corr != 5 {
		t.Fatalf("corrections = %d, want 5", corr)
	}
}

func TestPackUnpackSymbols(t *testing.T) {
	f := func(data []byte) bool {
		bits := EncodeBits(data)
		syms := PackSymbols(bits)
		for _, s := range syms {
			if s >= 32 {
				return false
			}
		}
		back := UnpackSymbols(syms)
		if len(back) < len(bits) {
			return false
		}
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthOnePassthrough(t *testing.T) {
	bits := EncodeBits([]byte{0x42})
	if got := Deinterleave(Interleave(bits, 1), 1, len(bits)); len(got) != len(bits) {
		t.Fatal("depth-1 changed length")
	}
}
