// Package bpu implements a branch-prediction unit — a BTB plus a gshare
// direction predictor — as the comparison baseline of §9.2: BPU-based
// attacks (Spectre-style) must mistrain a branch target buffer that is
// looked up with ~20 instruction-pointer bits, so ASLR forces the attacker
// to spray candidate addresses and mistraining costs ~26 000 cycles, while
// AfterImage's prefetcher uses only 8 untagged IP bits and trains in 3–4
// loads (1 000–2 000 cycles).
package bpu

// Config shapes the BPU.
type Config struct {
	// BTBEntries and BTBIndexBits shape the branch target buffer; the BTB
	// lookup matches MatchBits low IP bits in total (index + partial tag),
	// 20 on the parts the paper cites.
	BTBEntries   int
	BTBIndexBits int
	MatchBits    int
	// PHTEntries is the gshare pattern-history-table size (2-bit counters).
	PHTEntries int
	// HistoryBits is the global-history length folded into the PHT index.
	HistoryBits int
}

// DefaultConfig models a small modern BPU (4096-entry BTB, 20 matched IP
// bits, 16-bit gshare).
func DefaultConfig() Config {
	return Config{
		BTBEntries:   4096,
		BTBIndexBits: 12,
		MatchBits:    20,
		PHTEntries:   1 << 14,
		HistoryBits:  12,
	}
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// BPU is the predictor.
type BPU struct {
	cfg     Config
	btb     []btbEntry
	pht     []uint8 // 2-bit saturating counters, initialised weakly taken
	history uint64

	lookups     uint64
	mispredicts uint64
}

// New builds a BPU.
func New(cfg Config) *BPU {
	if cfg.BTBEntries <= 0 || cfg.PHTEntries <= 0 || cfg.MatchBits < cfg.BTBIndexBits {
		panic("bpu: invalid config")
	}
	b := &BPU{cfg: cfg, btb: make([]btbEntry, cfg.BTBEntries), pht: make([]uint8, cfg.PHTEntries)}
	for i := range b.pht {
		b.pht[i] = 1 // weakly not-taken
	}
	return b
}

func (b *BPU) btbIndex(ip uint64) uint64 {
	return ip & ((1 << uint(b.cfg.BTBIndexBits)) - 1) % uint64(len(b.btb))
}

// btbTag is the partial tag: the matched IP bits above the index.
func (b *BPU) btbTag(ip uint64) uint64 {
	return (ip >> uint(b.cfg.BTBIndexBits)) & ((1 << uint(b.cfg.MatchBits-b.cfg.BTBIndexBits)) - 1)
}

func (b *BPU) phtIndex(ip uint64) uint64 {
	h := b.history & ((1 << uint(b.cfg.HistoryBits)) - 1)
	return (ip ^ h) % uint64(len(b.pht))
}

// Prediction is one BPU answer.
type Prediction struct {
	Taken  bool
	Target uint64
	BTBHit bool
}

// Predict consults the predictor without updating it.
func (b *BPU) Predict(ip uint64) Prediction {
	e := b.btb[b.btbIndex(ip)]
	hit := e.valid && e.tag == b.btbTag(ip)
	taken := b.pht[b.phtIndex(ip)] >= 2
	p := Prediction{Taken: taken, BTBHit: hit}
	if hit {
		p.Target = e.target
	}
	return p
}

// Update resolves a branch: it trains the direction counter, installs the
// target, advances the global history, and reports whether the prediction
// would have been wrong.
func (b *BPU) Update(ip uint64, taken bool, target uint64) (mispredicted bool) {
	b.lookups++
	p := b.Predict(ip)
	mispredicted = p.Taken != taken || (taken && (!p.BTBHit || p.Target != target))
	if mispredicted {
		b.mispredicts++
	}
	idx := b.phtIndex(ip)
	if taken {
		if b.pht[idx] < 3 {
			b.pht[idx]++
		}
		b.btb[b.btbIndex(ip)] = btbEntry{tag: b.btbTag(ip), target: target, valid: true}
	} else if b.pht[idx] > 0 {
		b.pht[idx]--
	}
	b.history = b.history<<1 | boolBit(taken)
	return mispredicted
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Stats reports lookups and mispredictions.
func (b *BPU) Stats() (lookups, mispredicts uint64) { return b.lookups, b.mispredicts }

// MatchBits reports how many IP bits a cross-context injection must match.
func (b *BPU) MatchBits() int { return b.cfg.MatchBits }

// MistrainCost estimates the §9.2 comparison: the cycles an attacker needs
// to inject a BTB entry that a victim branch at victimIP (whose low 12 bits
// are known — ASLR is page-granular — but whose bits 12..MatchBits-1 are
// randomised) will consume. The attacker sprays one aliasing branch per
// candidate upper-bit pattern, executing each enough times to drive the
// direction counter to taken; branchCycles is the cost of one attacker
// branch execution.
func MistrainCost(cfg Config, branchCycles uint64) (candidates int, totalCycles uint64) {
	unknownBits := cfg.MatchBits - 12 // ASLR hides bits 12..MatchBits-1
	if unknownBits < 0 {
		unknownBits = 0
	}
	candidates = 1 << uint(unknownBits)
	// Two executions per candidate saturate the 2-bit counter past the
	// taken threshold and install the BTB entry.
	totalCycles = uint64(candidates) * 2 * branchCycles
	return candidates, totalCycles
}
