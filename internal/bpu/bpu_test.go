package bpu

import "testing"

func TestDirectionTraining(t *testing.T) {
	b := New(DefaultConfig())
	ip := uint64(0x400123)
	// Weakly not-taken at reset.
	if b.Predict(ip).Taken {
		t.Fatal("fresh counter predicted taken")
	}
	// An always-taken branch: once the global history saturates to ones,
	// the gshare index stabilises and the counter trains within two more
	// executions.
	for i := 0; i < DefaultConfig().HistoryBits+3; i++ {
		b.Update(ip, true, 0x500000)
	}
	if !b.Predict(ip).Taken {
		t.Fatal("always-taken branch still predicted not-taken")
	}
}

func TestBTBTargetInjection(t *testing.T) {
	b := New(DefaultConfig())
	ip := uint64(0x7f00_1234)
	b.Update(ip, true, 0xdead)
	p := b.Predict(ip)
	if !p.BTBHit || p.Target != 0xdead {
		t.Fatalf("BTB miss after install: %+v", p)
	}
}

// TestBTBMatches20Bits pins the §9.2 contrast: an IP aliasing in only the
// low 12 bits does NOT hit the BTB (unlike the prefetcher's 8-bit index),
// while one matching all 20 does.
func TestBTBMatches20Bits(t *testing.T) {
	b := New(DefaultConfig())
	victim := uint64(0x0040_5678)
	b.Update(victim, true, 0xbeef)

	alias12 := victim ^ (1 << 15) // same low 12, different bit 15
	if b.Predict(alias12).BTBHit {
		t.Fatal("12-bit alias hit a 20-bit-matched BTB")
	}
	alias20 := victim ^ (1 << 25) // same low 20 bits
	if !b.Predict(alias20).BTBHit {
		t.Fatal("20-bit alias missed")
	}
}

func TestMispredictCounting(t *testing.T) {
	b := New(DefaultConfig())
	ip := uint64(0x1000)
	if mis := b.Update(ip, true, 0x2000); !mis {
		t.Fatal("first taken branch must mispredict (weakly not-taken)")
	}
	n := DefaultConfig().HistoryBits + 3
	for i := 0; i < n; i++ {
		b.Update(ip, true, 0x2000)
	}
	if mis := b.Update(ip, true, 0x2000); mis {
		t.Fatal("fully trained branch mispredicted")
	}
	if look, mis := b.Stats(); look != uint64(n+2) || mis == 0 {
		t.Fatalf("stats: %d/%d", look, mis)
	}
}

func TestHistoryAffectsIndex(t *testing.T) {
	b := New(DefaultConfig())
	ip := uint64(0x3000)
	i1 := b.phtIndex(ip)
	b.Update(0x9999, true, 0x1)
	i2 := b.phtIndex(ip)
	if i1 == i2 {
		t.Fatal("global history did not move the PHT index")
	}
}

// TestMistrainCostMatchesPaper reproduces the §9.2 numbers: ~26 000 cycles
// for BPU mistraining under ASLR, versus 3–4 prefetcher loads
// (1 000–2 000 cycles).
func TestMistrainCostMatchesPaper(t *testing.T) {
	candidates, cycles := MistrainCost(DefaultConfig(), 50)
	if candidates != 256 {
		t.Fatalf("candidates = %d, want 256 (2^(20-12))", candidates)
	}
	if cycles < 20_000 || cycles > 35_000 {
		t.Fatalf("BPU mistrain cycles = %d, want ~26 000", cycles)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{})
}
