package afterimage

import (
	"afterimage/internal/bignum"
	"afterimage/internal/core"
	"afterimage/internal/rsa"
	"afterimage/internal/sim"
	"afterimage/internal/victim"
)

// RSAOptions configures the §6.2 end-to-end key extraction against the
// timing-constant Montgomery-ladder engine.
type RSAOptions struct {
	// KeyBits is the RSA modulus size (the paper uses 1024; tests use less).
	KeyBits int
	// ItersPerBit is the number of observations majority-voted per key bit
	// (the paper needs at most 5 because AfterImage-PSC is 82 % accurate).
	ItersPerBit int
	// Pipelined observes every key bit within a single decryption instead
	// of one targeted bit per decryption. The paper's flow is per-bit
	// (false); the pipelined mode is this library's extension showing the
	// attack cost collapses from hours to seconds when the attacker can
	// keep pace with the ladder.
	Pipelined bool
	// VictimIterationCycles models the victim's per-ladder-step arithmetic
	// cost. The default (0) picks the -O0 MbedTLS-like profile that makes
	// one 1024-bit decryption take ~2.2 simulated seconds, matching the
	// paper's ~10 s per 5-iteration bit leak.
	VictimIterationCycles uint64
}

// RSAResult reports the key extraction.
type RSAResult struct {
	KeyBits       int
	TrueExponent  bignum.Nat
	Recovered     bignum.Nat
	BitsCorrect   int
	BitsTotal     int
	ObservationOK int // individual PSC observations that matched the bit
	Observations  int
	Cycles        uint64
	Decryptions   int
}

// BitSuccessRate is the fraction of key bits recovered correctly after
// majority voting.
func (r RSAResult) BitSuccessRate() float64 {
	if r.BitsTotal == 0 {
		return 0
	}
	return float64(r.BitsCorrect) / float64(r.BitsTotal)
}

// PSCSuccessRate is the per-observation accuracy (the paper's 82 %).
func (r RSAResult) PSCSuccessRate() float64 {
	if r.Observations == 0 {
		return 0
	}
	return float64(r.ObservationOK) / float64(r.Observations)
}

// ExtractRSAKey runs the §6.2 attack: the attacker thread repeatedly trains
// the entry aliasing the if-path load of the ladder, yields to the victim's
// decryption, and reads each private-exponent bit from the prefetcher
// status (Figure 14c; §7.3).
func (l *Lab) ExtractRSAKey(opts RSAOptions) RSAResult {
	if opts.KeyBits == 0 {
		opts.KeyBits = 128
	}
	if opts.ItersPerBit <= 0 {
		opts.ItersPerBit = 5
	}
	m := l.m
	key := rsa.TestKey(opts.KeyBits)
	attProc := m.NewProcess("attacker")
	vicProc := m.NewProcess("victim")
	vicEnv := m.Direct(vicProc)
	vic := victim.NewRSALadder(vicEnv, key)
	if opts.VictimIterationCycles != 0 {
		vic.IterationCycles = opts.VictimIterationCycles
	} else {
		// -O0 big-number profile: one full decryption of a KeyBits ladder
		// lasts ~2.2 s of simulated time (§7.3's observed victim runtime).
		vic.IterationCycles = uint64(2.2 * l.m.Cfg.GHz * 1e9 / float64(opts.KeyBits))
	}

	exp := key.D
	bits := exp.BitLen()
	res := RSAResult{KeyBits: opts.KeyBits, TrueExponent: exp, BitsTotal: bits}
	ciphertext, err := key.Encrypt(bignum.New(0xC0FFEE))
	if err != nil {
		panic(err)
	}

	votes := make([]int, bits) // votes[i] > 0 ⇒ bit (msb-first index i) is 1
	start := m.Now()

	if opts.Pipelined {
		res.Decryptions = opts.ItersPerBit
		for run := 0; run < opts.ItersPerBit; run++ {
			l.rsaObserveRun(attProc, vicProc, vic, ciphertext, bits, -1, votes, &res)
		}
	} else {
		// Faithful per-bit flow: one decryption run observes one bit.
		for bit := 0; bit < bits; bit++ {
			for it := 0; it < opts.ItersPerBit; it++ {
				res.Decryptions++
				l.rsaObserveRun(attProc, vicProc, vic, ciphertext, bits, bit, votes, &res)
			}
		}
	}
	res.Cycles = m.Now() - start

	// Majority vote per bit, MSB first.
	var rec bignum.Nat
	one := bignum.New(1)
	for i := 0; i < bits; i++ {
		rec = rec.Shl(1)
		if votes[i] > 0 {
			rec = rec.Add(one)
		}
	}
	res.Recovered = rec
	for i := 0; i < bits; i++ {
		want := exp.Bit(bits - 1 - i)
		got := uint(0)
		if votes[i] > 0 {
			got = 1
		}
		if got == want {
			res.BitsCorrect++
		}
	}
	return res
}

// rsaObserveRun performs one victim decryption; the attacker watches bit
// `target` (all bits when target < 0) and accumulates ±1 votes.
func (l *Lab) rsaObserveRun(attProc, vicProc *sim.Process, vic *victim.RSALadder,
	ciphertext bignum.Nat, bits, target int, votes []int, res *RSAResult) {
	m := l.m
	exp := vic.Key.D
	m.Spawn(attProc, "attacker", func(e *sim.Env) {
		psc := core.NewPSC(e, core.IPWithLow8(0x40_0000, uint8(vic.IPIf)), 11, 64)
		psc.Train(e, 4)
		for iter := 0; iter < bits; iter++ {
			watch := target < 0 || iter == target
			if watch {
				e.BeginPhase("train")
				psc.Train(e, 3)
				e.BeginPhase("trigger")
			}
			e.Yield() // victim executes ladder iteration `iter`
			if !watch {
				continue
			}
			e.BeginPhase("probe")
			executed := !psc.Check(e)
			e.BeginPhase("decode")
			res.Observations++
			truth := exp.Bit(bits-1-iter) == 1
			if executed == truth {
				res.ObservationOK++
			}
			if executed {
				votes[iter]++
			} else {
				votes[iter]--
			}
			e.EndPhase()
		}
	})
	m.Spawn(vicProc, "victim", func(e *sim.Env) {
		vic.Decrypt(e, ciphertext)
	})
	m.Run()
}

// TimingSample is one PSC observation on the Figure 15 timeline.
type TimingSample struct {
	Cycle     uint64
	Triggered bool // prefetcher still fires (no victim load in this slot)
}

// TimingResult is the §6.3 load-tracking outcome for one monitored IP.
type TimingResult struct {
	TargetName string
	Samples    []TimingSample
	// OnsetIndex is the first sample whose status dropped — the recovered
	// operation time.
	OnsetIndex int
}

// TrackOpenSSL reproduces §6.3 / Figure 15: the attacker mistrains once and
// then samples the prefetcher status at every scheduling slot while the
// OpenSSL-like victim loads its key and decrypts; the two status drops
// reveal when each phase ran.
func (l *Lab) TrackOpenSSL() (keyLoad, decrypt TimingResult) {
	m := l.m
	attProc := m.NewProcess("attacker")
	vicProc := m.NewProcess("victim")
	vicEnv := m.Direct(vicProc)
	vic := victim.NewOpenSSLRSA(vicEnv)

	keyLoad = TimingResult{TargetName: "key-load", OnsetIndex: -1}
	decrypt = TimingResult{TargetName: "mul-add", OnsetIndex: -1}
	totalSlots := vic.IdleBeforeKeyLoad + vic.KeyLines + vic.IdleBeforeDecrypt + vic.MulAddIters + 2

	m.Spawn(attProc, "attacker", func(e *sim.Env) {
		pscKey := core.NewPSC(e, core.IPWithLow8(0x40_0000, uint8(vic.IPKeyLoad)), 11, 128)
		pscMul := core.NewPSC(e, core.IPWithLow8(0x41_0000, uint8(vic.IPMulAdd)), 9, 128)
		pscKey.Train(e, 4)
		pscMul.Train(e, 4)
		for s := 0; s < totalSlots; s++ {
			e.BeginPhase("trigger")
			e.Yield()
			e.BeginPhase("probe")
			kc := pscKey.Check(e)
			mc := pscMul.Check(e)
			keyLoad.Samples = append(keyLoad.Samples, TimingSample{Cycle: e.Now(), Triggered: kc})
			decrypt.Samples = append(decrypt.Samples, TimingSample{Cycle: e.Now(), Triggered: mc})
			e.EndPhase()
		}
	})
	m.Spawn(vicProc, "victim", func(e *sim.Env) {
		vic.Run(e)
		// Keep yielding so the attacker can finish its sampling window.
		for i := 0; i < totalSlots; i++ {
			e.Yield()
		}
	})
	m.Run()

	keyLoad.OnsetIndex = onsetOf(keyLoad.Samples)
	decrypt.OnsetIndex = onsetOf(decrypt.Samples)
	return keyLoad, decrypt
}

// TrackAES applies the same §6.3 flow to an OpenSSL-style AES-128
// encryption: the attacker samples the prefetcher entry aliasing the S-box
// lookup IP and recovers when the key schedule ran and when the block
// encryption ran — the timing input of the Figure 16 power attack. It
// returns the PSC timeline, the slot indices of the two detected events,
// and the ciphertext (so tests can confirm the victim computed real AES).
func (l *Lab) TrackAES() (timeline TimingResult, expandSlot, encryptSlot int, ciphertext [16]byte) {
	m := l.m
	attProc := m.NewProcess("attacker")
	vicProc := m.NewProcess("victim")
	vicEnv := m.Direct(vicProc)
	vic := victim.NewAESEncryptor(vicEnv)
	plaintext := []byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
		0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}

	timeline = TimingResult{TargetName: "aes-sbox", OnsetIndex: -1}
	totalSlots := vic.Slots() + 2

	m.Spawn(attProc, "attacker", func(e *sim.Env) {
		psc := core.NewPSC(e, core.IPWithLow8(0x42_0000, uint8(vic.IPSBox)), 11, 128)
		psc.Train(e, 4)
		for s := 0; s < totalSlots; s++ {
			e.BeginPhase("trigger")
			e.Yield()
			e.BeginPhase("probe")
			ok := psc.Check(e)
			timeline.Samples = append(timeline.Samples, TimingSample{Cycle: e.Now(), Triggered: ok})
			e.EndPhase()
		}
	})
	m.Spawn(vicProc, "victim", func(e *sim.Env) {
		ct, err := vic.Run(e, plaintext)
		if err == nil {
			ciphertext = ct
		}
		for i := 0; i < totalSlots; i++ {
			e.Yield()
		}
	})
	m.Run()

	// The two S-box bursts are single-slot events (unlike the RSA phases),
	// so event extraction looks for isolated drops: each burst of 40/176
	// lookups lands in one slot and re-trains over the next two.
	expandSlot, encryptSlot = -1, -1
	for i, s := range timeline.Samples {
		if s.Triggered {
			continue
		}
		// Skip the re-training misses that follow a detected event.
		if expandSlot >= 0 && i <= expandSlot+2 {
			continue
		}
		if expandSlot < 0 {
			expandSlot = i
			timeline.OnsetIndex = i
		} else if encryptSlot < 0 && i > expandSlot+2 {
			encryptSlot = i
		}
	}
	return timeline, expandSlot, encryptSlot, ciphertext
}

// onsetOf locates the first run of ≥3 consecutive status drops. Shorter
// drops are noise: a context switch that evicts the trained entry costs
// exactly two misses before the chain re-trains itself (the Figure 15
// two-miss signature), whereas a real victim phase keeps re-disturbing the
// entry for its whole duration.
func onsetOf(samples []TimingSample) int {
	run := 0
	for i, s := range samples {
		if s.Triggered {
			run = 0
			continue
		}
		run++
		if run == 3 {
			return i - 2
		}
	}
	return -1
}
