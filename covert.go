package afterimage

import (
	"afterimage/internal/core"
	"afterimage/internal/ecc"
	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// CovertOptions configures the §5.3 cross-process covert channel.
type CovertOptions struct {
	// Message is the payload; it is sent 5 bits per round.
	Message []byte
	// Entries is how many prefetcher entries carry symbols concurrently
	// (1 = the paper's 833 bps / <6 % error configuration; 24 = the
	// maximum-bandwidth / >25 % error configuration of §7.2).
	Entries int
	// SlotCycles is the agreed half-round time slot. The channel is
	// slot-synchronised (sender and receiver cannot observe each other
	// directly), and the slot — not the microarchitectural work — bounds
	// the bandwidth, exactly as in the paper: 2 slots per 5-bit round at
	// 3 ms each give the reported 833 bps; 24 parallel entries approach
	// 20 Kbps. Default 9 000 000 cycles (3 ms at 3 GHz).
	SlotCycles uint64
	// UseECC enables this library's forward-error-correction extension:
	// Hamming(7,4) plus a burst interleaver, trading 7/4 of the rate for
	// single-symbol-loss immunity (useful in the noisy multi-entry
	// configurations).
	UseECC bool
	// InterleaveDepth spreads symbol bursts across codewords (default 35,
	// one lost 5-bit symbol per codeword).
	InterleaveDepth int
}

// CovertResult reports the transfer.
type CovertResult struct {
	SymbolsSent     int
	SymbolErrors    int
	Cycles          uint64
	BitsTransferred int
	// ECC-mode fields: the decoded payload, how many of its bytes differ
	// from the original, and how many bit corrections Hamming applied.
	DecodedMessage    []byte
	MessageByteErrors int
	Corrections       int
}

// ErrorRate is the symbol error fraction.
func (r CovertResult) ErrorRate() float64 {
	if r.SymbolsSent == 0 {
		return 0
	}
	return float64(r.SymbolErrors) / float64(r.SymbolsSent)
}

// Bps reports the simulated goodput (error-free bits) per second at the
// modelled clock frequency.
func (r CovertResult) Bps(secondsPerCycle float64) float64 {
	t := float64(r.Cycles) * secondsPerCycle
	if t == 0 {
		return 0
	}
	return float64(r.BitsTransferred) / t
}

// RawBps reports the channel's raw signalling rate (all symbols, including
// erroneous ones) — the paper's "maximum bandwidth" framing for the
// 24-entry configuration.
func (r CovertResult) RawBps(secondsPerCycle float64) float64 {
	t := float64(r.Cycles) * secondsPerCycle
	if t == 0 {
		return 0
	}
	return float64(core.SymbolBits*r.SymbolsSent) / t
}

// symbolsOf splits a byte payload into 5-bit symbols.
func symbolsOf(msg []byte) []uint8 {
	var out []uint8
	acc, nbits := 0, 0
	for _, b := range msg {
		acc = acc<<8 | int(b)
		nbits += 8
		for nbits >= core.SymbolBits {
			out = append(out, uint8(acc>>(nbits-core.SymbolBits))&0x1F)
			nbits -= core.SymbolBits
		}
	}
	if nbits > 0 {
		out = append(out, uint8(acc<<(core.SymbolBits-nbits))&0x1F)
	}
	return out
}

// RunCovertChannel executes the §5.3 covert channel and reports error rate
// and simulated bandwidth (Figure 14b; the 833 bps / <6 % numbers of §7.2).
// A simulator fault panics; RunCovertChannelE is the error-returning
// variant.
func (l *Lab) RunCovertChannel(opts CovertOptions) CovertResult {
	res, err := l.runCovertChannel(opts)
	if err != nil {
		panic(err)
	}
	return res
}

func (l *Lab) runCovertChannel(opts CovertOptions) (CovertResult, error) {
	if err := opts.Validate(); err != nil {
		return CovertResult{}, err
	}
	if len(opts.Message) == 0 {
		opts.Message = []byte("afterimage covert channel payload")
	}
	entries := opts.Entries
	if entries <= 0 {
		entries = 1
	}
	if opts.SlotCycles == 0 {
		opts.SlotCycles = 9_000_000
	}
	m := l.m
	sndProc := m.NewProcess("sender")
	rcvProc := m.NewProcess("receiver")
	rcvEnv := m.Direct(rcvProc)

	var symbols []uint8
	var txBitsLen, depth int
	if opts.UseECC {
		depth = opts.InterleaveDepth
		if depth <= 0 {
			depth = 35
		}
		bits := ecc.EncodeBits(opts.Message)
		txBitsLen = len(bits)
		symbols = ecc.PackSymbols(ecc.Interleave(bits, depth))
	} else {
		symbols = symbolsOf(opts.Message)
	}
	// With E parallel entries, each round moves E symbols over E distinct
	// protocol entries and shared pages.
	cfgs := make([]core.CovertConfig, entries)
	sharedBases := make([]mem.VAddr, entries)
	sndViews := make([]mem.VAddr, entries)
	for i := range cfgs {
		cfgs[i] = core.DefaultCovertConfig()
		cfgs[i].ProtocolIPLow8 = uint8(0x50 + i) // distinct low-8 per lane
		page := rcvEnv.Mmap(mem.PageSize, mem.MapShared)
		sharedBases[i] = page.Base
		sndViews[i] = sndProc.AS.MapExisting(page).Base
	}

	rounds := (len(symbols) + entries - 1) / entries
	var decoded []uint8
	res := CovertResult{SymbolsSent: len(symbols)}
	start := m.Now()

	m.Spawn(rcvProc, "receiver", func(e *sim.Env) {
		rxs := make([]*core.CovertReceiver, entries)
		for i := range rxs {
			rxs[i] = core.NewCovertReceiver(e, cfgs[i], sharedBases[i])
		}
		for r := 0; r < rounds; r++ {
			slotEnd := e.Now() + opts.SlotCycles
			for i := range rxs {
				rxs[i].Prepare(e)
			}
			if now := e.Now(); now < slotEnd {
				e.Sleep(slotEnd - now) // wait out the agreed slot
			}
			e.Yield()
			e.BeginPhase("probe")
			for i := range rxs {
				if r*entries+i >= len(symbols) {
					break
				}
				sym, ok := rxs[i].Receive(e)
				if !ok {
					sym = 0xFF
				}
				decoded = append(decoded, sym)
			}
			e.EndPhase()
		}
	})
	m.Spawn(sndProc, "sender", func(e *sim.Env) {
		txs := make([]*core.CovertSender, entries)
		for i := range txs {
			txs[i] = core.NewCovertSender(e, cfgs[i])
		}
		for r := 0; r < rounds; r++ {
			slotEnd := e.Now() + opts.SlotCycles
			e.BeginPhase("train")
			for i := range txs {
				idx := r*entries + i
				if idx >= len(symbols) {
					break
				}
				_ = txs[i].Send(e, symbols[idx])
			}
			e.EndPhase()
			if now := e.Now(); now < slotEnd {
				e.Sleep(slotEnd - now)
			}
			e.Yield()
		}
	})
	_, runErr := m.RunChecked()
	res.Cycles = m.Now() - start

	for i, want := range symbols {
		if i >= len(decoded) || decoded[i] != want {
			res.SymbolErrors++
		}
	}
	res.BitsTransferred = core.SymbolBits * (res.SymbolsSent - res.SymbolErrors)

	if opts.UseECC {
		// Undetected symbols decode as 0xFF upstream; clamp into range so
		// the bit unpacking stays well-formed (they count as bursts).
		rx := make([]uint8, len(decoded))
		for i, s := range decoded {
			if s >= 32 {
				s = 0
			}
			rx[i] = s
		}
		bits := ecc.Deinterleave(ecc.UnpackSymbols(rx), depth, txBitsLen)
		msg, corrections := ecc.DecodeBits(bits)
		res.DecodedMessage = msg
		res.Corrections = corrections
		for i, b := range opts.Message {
			if i >= len(msg) || msg[i] != b {
				res.MessageByteErrors++
			}
		}
	}
	return res, runErr
}
