package afterimage

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"afterimage/internal/faults"
	"afterimage/internal/runner"
)

// smallSweep is the campaign every supervised-sweep test runs: small enough
// to stay fast, three points so order and parallelism matter, and enough
// injected noise that the curve is not trivially flat.
func smallSweep() SweepOptions {
	return SweepOptions{
		Attack:      SweepV1Thread,
		Bits:        12,
		Intensities: []float64{0, 1, 3},
		Faults:      faults.Config{EventsPerMCycle: 200},
	}
}

// TestSweepParallelMatchesSequentialByteIdentical: the acceptance criterion —
// for a fixed seed, the curve's JSON is byte-identical whether the points run
// on one worker or eight.
func TestSweepParallelMatchesSequentialByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep comparison is slow")
	}
	run := func(workers int) []byte {
		o := smallSweep()
		o.Runner = runner.Options{Workers: workers}
		res, err := NewLab(Options{Seed: 5}).RunFaultSweepCtx(context.Background(), o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		raw, err := res.JSON()
		if err != nil {
			t.Fatalf("workers=%d: marshal: %v", workers, err)
		}
		return raw
	}
	seq := run(1)
	for _, workers := range []int{4, 8} {
		if par := run(workers); !bytes.Equal(seq, par) {
			t.Fatalf("workers=%d produced a different curve:\nseq: %s\npar: %s", workers, seq, par)
		}
	}
}

// TestSweepKillResumeByteIdentical: cancel the campaign after its first
// checkpoint write, then resume from the checkpoint — the resumed curve's
// JSON must equal a straight-through run's, and the resumed points must show
// up in the runner counters.
func TestSweepKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep comparison is slow")
	}
	golden := func() []byte {
		res, err := NewLab(Options{Seed: 5}).RunFaultSweepCtx(context.Background(), smallSweep())
		if err != nil {
			t.Fatalf("straight-through: %v", err)
		}
		raw, _ := res.JSON()
		return raw
	}()

	path := filepath.Join(t.TempDir(), "sweep.ck.json")

	// Phase 1: kill after the first completed point.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := smallSweep()
	o.Runner = runner.Options{
		CheckpointPath: path,
		OnCheckpoint: func(completed int) {
			if completed >= 1 {
				cancel()
			}
		},
	}
	if _, err := NewLab(Options{Seed: 5}).RunFaultSweepCtx(ctx, o); err == nil {
		t.Fatal("killed campaign reported no error")
	}

	// Phase 2: resume on a fresh lab and context.
	lab := NewLab(Options{Seed: 5})
	o = smallSweep()
	o.Runner = runner.Options{CheckpointPath: path, Resume: true}
	res, err := lab.RunFaultSweepCtx(context.Background(), o)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	raw, _ := res.JSON()
	if !bytes.Equal(golden, raw) {
		t.Fatalf("resumed curve differs from straight-through:\nwant: %s\ngot:  %s", golden, raw)
	}
	snap := lab.MetricsSnapshot()
	if n, _ := snap.Get("runner.jobs.resumed"); n == 0 {
		t.Error("resume run recorded no runner.jobs.resumed")
	}
	if n, _ := snap.Get("runner.checkpoint.writes"); n == 0 {
		t.Error("resume run recorded no checkpoint writes")
	}
}

// TestSweepDegradedPointCompletes: the other acceptance criterion — a
// campaign with one permanently-failing point (a cycle budget only the
// high-intensity point overruns, classified permanent) finishes, marks that
// point degraded with its machine-readable fault kind, and keeps the healthy
// points intact.
func TestSweepDegradedPointCompletes(t *testing.T) {
	o := SweepOptions{
		Attack:      SweepV1Thread,
		Bits:        12,
		Intensities: []float64{0, 6},
		Faults:      faults.Config{EventsPerMCycle: 200},
		// Intensity 0 needs ~258k cycles, intensity 6 ~929k (fault stalls):
		// 500k passes the clean point and kills the stormy one.
		MaxCycles: 500_000,
		Runner: runner.Options{
			Classify: func(error) runner.Class { return runner.ClassPermanent },
		},
	}
	res, err := NewLab(Options{Seed: 42}).RunFaultSweepCtx(context.Background(), o)
	if err != nil {
		t.Fatalf("campaign aborted instead of degrading: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	clean, stormy := res.Points[0], res.Points[1]
	if clean.Degraded || clean.Err != "" {
		t.Errorf("clean point degraded: %+v", clean)
	}
	if clean.SuccessRate < 0.5 {
		t.Errorf("clean point success %.2f, want healthy", clean.SuccessRate)
	}
	if !stormy.Degraded {
		t.Errorf("over-budget point not degraded: %+v", stormy)
	}
	if stormy.FaultKind != FaultBudget.String() {
		t.Errorf("fault kind %q, want %q (err %q)", stormy.FaultKind, FaultBudget, stormy.Err)
	}
	if stormy.Err == "" {
		t.Error("degraded point lost its human-readable error")
	}
}

// TestSweepPropagatesTelemetry: the parent lab's tracing and metrics reach
// the per-point labs — phase summaries absorbed in point order, child event
// traces appended to the parent ring, runner counters on the parent
// registry. Before the fix the per-point labs silently dropped all of it.
func TestSweepPropagatesTelemetry(t *testing.T) {
	lab := NewLab(Options{Seed: 5})
	lab.EnableTrace(0)
	o := smallSweep()
	o.Intensities = []float64{0, 1}
	res, err := lab.RunFaultSweepCtx(context.Background(), o)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for i, p := range res.Points {
		if len(p.Phases) == 0 {
			t.Errorf("point %d carries no phase summaries", i)
		}
	}
	phases := lab.PhaseSummaries()
	if len(phases) == 0 {
		t.Fatal("parent lab absorbed no phase summaries")
	}
	var spans int
	for _, p := range phases {
		spans += p.Spans
	}
	var want int
	for _, p := range res.Points {
		for _, ph := range p.Phases {
			want += ph.Spans
		}
	}
	if spans != want {
		t.Errorf("parent phase spans %d, points carry %d", spans, want)
	}
	events := lab.Machine().Telemetry().Events()
	if len(events) == 0 {
		t.Fatal("parent trace absorbed no child events")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatalf("absorbed trace not monotonic at %d: %d < %d", i, events[i].Cycle, events[i-1].Cycle)
		}
	}
	snap := lab.MetricsSnapshot()
	if n, _ := snap.Get("runner.jobs.started"); n != uint64(len(o.Intensities)) {
		t.Errorf("runner.jobs.started = %d, want %d", n, len(o.Intensities))
	}
	if n, _ := snap.Get("runner.jobs.completed"); n != uint64(len(o.Intensities)) {
		t.Errorf("runner.jobs.completed = %d, want %d", n, len(o.Intensities))
	}
}

// TestSweepCanceledReturnsPrefix: a canceled campaign returns the completed
// prefix and an error, never a silently-truncated "successful" curve.
func TestSweepCanceledReturnsPrefix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before any point runs
	res, err := NewLab(Options{Seed: 5}).RunFaultSweepCtx(ctx, smallSweep())
	if err == nil {
		t.Fatal("canceled campaign reported success")
	}
	if len(res.Points) != 0 {
		t.Fatalf("canceled-before-start campaign produced %d points", len(res.Points))
	}
}
