package afterimage

// Ablation benchmarks for the design choices DESIGN.md calls out: reload
// ordering, the prefetcher's replacement policy, stride selection versus
// the noise prefetchers, training length, mitigation alternatives (§8.2)
// and the clear-ip-prefetcher flush interval (§8.3). Each reports its
// finding as a benchmark metric.

import (
	"testing"

	"afterimage/internal/cache"
	"afterimage/internal/champsim"
	"afterimage/internal/core"
	"afterimage/internal/mem"
	"afterimage/internal/prefetcher"
	"afterimage/internal/sim"
	"afterimage/internal/trace"
)

// BenchmarkTrainingCostComparison reproduces §9.2: BPU mistraining versus
// prefetcher training (cycles and sprayed candidates).
func BenchmarkTrainingCostComparison(b *testing.B) {
	var c TrainingComparison
	for i := 0; i < b.N; i++ {
		c = CompareTrainingCosts(int64(i + 1))
	}
	b.ReportMetric(float64(c.BPUCycles), "bpu-cycles")
	b.ReportMetric(float64(c.PrefetcherCycles), "prefetcher-cycles")
	b.ReportMetric(c.Advantage(), "advantage-x")
}

// reloadFalseHits counts spurious hits of one flush→reload cycle on an
// untouched page under the given reload order.
func reloadFalseHits(seed int64, order core.ReloadOrder, sweeps int) int {
	m := sim.NewMachine(sim.Quiet(sim.CoffeeLake(seed)))
	env := m.Direct(m.NewProcess("a"))
	page := env.Mmap(mem.PageSize, mem.MapShared)
	fr := core.NewFlushReload()
	fr.Order = order
	false0 := 0
	for s := 0; s < sweeps; s++ {
		fr.FlushPage(env, page.Base)
		_, hits := fr.ReloadPage(env, page.Base)
		false0 += len(hits) // the page was never touched: every hit is false
	}
	return false0
}

// BenchmarkAblationReloadOrder quantifies why the reload sweep order
// matters: sequential order triggers the stream prefetchers constantly,
// the artifact's shuffle leaks ~1 self-trained echo per sweep, the zigzag
// order is silent.
func BenchmarkAblationReloadOrder(b *testing.B) {
	var zig, shuf, seq float64
	const sweeps = 20
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		zig = float64(reloadFalseHits(seed, core.OrderZigzag, sweeps)) / sweeps
		shuf = float64(reloadFalseHits(seed, core.OrderShuffle, sweeps)) / sweeps
		seq = float64(reloadFalseHits(seed, core.OrderSequential, sweeps)) / sweeps
	}
	b.ReportMetric(zig, "zigzag-falsehits/sweep")
	b.ReportMetric(shuf, "shuffle-falsehits/sweep")
	b.ReportMetric(seq, "sequential-falsehits/sweep")
}

// fig8bPattern runs the Figure 8b schedule on a raw prefetcher with the
// given replacement policy and reports whether the observed eviction set is
// exactly positions 9–16.
func fig8bPattern(policy cache.PolicyKind) bool {
	schedule := func(p *prefetcher.IPStride) ([]uint64, []uint64) {
		ips := make([]uint64, 32)
		bases := make([]uint64, 32)
		feedIPs := func(from, to int, off uint64) {
			for k := from; k < to; k++ {
				ips[k] = 0x9000_0000 + uint64(k)
				bases[k] = uint64(0x100000 + k*mem.PageSize)
				for r := uint64(0); r < 5; r++ {
					p.OnLoad(prefetcher.Access{
						IP: ips[k], PA: mem.PAddr(bases[k] + r*7*64 + off*64),
						PID: 1, TLBHit: true,
					})
				}
			}
		}
		feedIPs(0, 24, 0)
		feedIPs(0, 8, 5)
		feedIPs(24, 32, 0)
		return ips, bases
	}
	for i := 0; i < 24; i++ {
		cfg := prefetcher.DefaultIPStrideConfig()
		cfg.Policy = policy
		p := prefetcher.NewIPStride(cfg)
		ips, bases := schedule(p)
		reqs := p.OnLoad(prefetcher.Access{
			IP: ips[i], PA: mem.PAddr(bases[i] + 45*64), PID: 1, TLBHit: true,
		})
		survived := len(reqs) > 0
		want := i < 8 || i >= 16
		if survived != want {
			return false
		}
	}
	return true
}

// BenchmarkAblationReplacementPolicy checks which replacement policies
// reproduce the paper's Figure 8b observation — Bit-PLRU and true LRU do
// (the paper distinguishes them by hardware cost), FIFO does not, which is
// exactly the elimination argument of §4.5.
func BenchmarkAblationReplacementPolicy(b *testing.B) {
	var bitplru, lru, fifo float64
	for i := 0; i < b.N; i++ {
		bitplru = boolMetric(fig8bPattern(cache.BitPLRU))
		lru = boolMetric(fig8bPattern(cache.LRU))
		fifo = boolMetric(fig8bPattern(cache.FIFO))
	}
	b.ReportMetric(bitplru, "bitplru-matches")
	b.ReportMetric(lru, "lru-matches")
	b.ReportMetric(fifo, "fifo-matches")
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// strideFalsePositiveRate measures how often an idle victim page appears to
// carry the given stride because the DCU/DPL/streamer prefetchers faked it.
// The victim touches two unrelated consecutive lines per round, as a
// streaming workload does.
func strideFalsePositiveRate(seed int64, stride int64, rounds int) float64 {
	m := sim.NewMachine(sim.Quiet(sim.CoffeeLake(seed)))
	env := m.Direct(m.NewProcess("a"))
	page := env.Mmap(mem.PageSize, mem.MapShared)
	fr := core.NewFlushReload()
	env.WarmTLB(page.Base)
	fp := 0
	for r := 0; r < rounds; r++ {
		fr.FlushPage(env, page.Base)
		// Innocent victim activity: a short sequential burst (no branch
		// secret, no trained entry involved).
		base := (r * 5) % 50
		for k := 0; k < 3; k++ {
			env.Load(0x9000_0000+uint64(r%7), page.Base+mem.VAddr((base+k)*mem.LineSize))
		}
		_, hits := fr.ReloadPage(env, page.Base)
		if _, ok := core.DetectStride(hits, []int64{stride}); ok {
			fp++
		}
	}
	return float64(fp) / float64(rounds)
}

// BenchmarkAblationStrideChoice shows why the paper trains with strides
// beyond four lines (§7.1): small strides collide with the reach of the
// DCU/DPL/streamer prefetchers and read innocent streaming as a signal.
func BenchmarkAblationStrideChoice(b *testing.B) {
	var small, large float64
	const rounds = 40
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		small = (strideFalsePositiveRate(seed, 1, rounds) +
			strideFalsePositiveRate(seed, 2, rounds)) / 2
		large = (strideFalsePositiveRate(seed, 7, rounds) +
			strideFalsePositiveRate(seed, 11, rounds)) / 2
	}
	b.ReportMetric(small*100, "fp-%-stride≤2")
	b.ReportMetric(large*100, "fp-%-stride≥7")
}

// BenchmarkAblationTrainingRounds sweeps the gadget training length: the
// 2-bit confidence counter needs three accesses before the entry triggers
// (§4.2's "minimum is 3 times").
func BenchmarkAblationTrainingRounds(b *testing.B) {
	rates := make([]float64, 5)
	for i := 0; i < b.N; i++ {
		for rounds := 1; rounds <= 4; rounds++ {
			m := sim.NewMachine(sim.Quiet(sim.CoffeeLake(int64(i + rounds*100))))
			env := m.Direct(m.NewProcess("a"))
			page := env.Mmap(mem.PageSize, mem.MapShared)
			env.WarmTLB(page.Base)
			fr := core.NewFlushReload()
			ok := 0
			const trials = 10
			for tr := 0; tr < trials; tr++ {
				g := core.MustNewGadget(env, []core.TrainEntry{{IP: 0x40_0034, StrideLines: 7}})
				g.Train(env, rounds)
				fr.FlushPage(env, page.Base)
				env.Load(0x0804_8634, page.Base+3*mem.LineSize) // victim if-path
				_, hits := fr.ReloadPage(env, page.Base)
				if _, found := core.DetectStride(hits, []int64{7}); found {
					ok++
				}
				m.Pref.IPStride.Flush() // fresh entry per trial
			}
			rates[rounds] = float64(ok) / trials
		}
	}
	b.ReportMetric(rates[1]*100, "rounds1-%")
	b.ReportMetric(rates[2]*100, "rounds2-%")
	b.ReportMetric(rates[3]*100, "rounds3-%")
	b.ReportMetric(rates[4]*100, "rounds4-%")
}

// BenchmarkAblationTagMitigations evaluates the §8.2 hardware-tagging
// alternatives: a full-IP tag and a PID tag each reduce the V1 attack to
// noise, at zero runtime cost (unlike the flush, which trades 0.7 %).
func BenchmarkAblationTagMitigations(b *testing.B) {
	var base, fullIP, pid float64
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		base = NewLab(Options{Seed: seed}).RunVariant1(V1Options{Bits: 32}).SuccessRate()
		fullIP = positives(NewLab(Options{Seed: seed, FullIPTag: true}).RunVariant1(V1Options{Bits: 32}))
		pid = positives(NewLab(Options{Seed: seed, PIDTag: true}).RunVariant1(V1Options{Bits: 32, CrossProcess: true}))
	}
	b.ReportMetric(base*100, "baseline-success-%")
	b.ReportMetric(fullIP*100, "fullip-signal-%")
	b.ReportMetric(pid*100, "pidtag-signal-%")
}

// positives reports the fraction of rounds that produced any stride signal.
func positives(r LeakResult) float64 {
	n := 0
	for _, inf := range r.Inferred {
		if inf {
			n++
		}
	}
	if len(r.Inferred) == 0 {
		return 0
	}
	return float64(n) / float64(len(r.Inferred))
}

// BenchmarkAblationFlushInterval sweeps the clear-ip-prefetcher period:
// the §8.3 cost scales with flush frequency.
func BenchmarkAblationFlushInterval(b *testing.B) {
	intervals := []uint64{3_000, 30_000, 300_000}
	slow := make([]float64, len(intervals))
	for i := 0; i < b.N; i++ {
		p := trace.SPECLike()[0] // the most prefetch-dependent profile
		records := trace.NewGenerator(p, int64(i+1)).Generate(120_000)
		baseSim, err := champsim.New(champsim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		base := baseSim.Run(records)
		for k, iv := range intervals {
			cfg := champsim.DefaultConfig()
			cfg.FlushIntervalCycles = iv
			s, err := champsim.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			r := s.Run(records)
			slow[k] = (1 - r.IPC()/base.IPC()) * 100
		}
	}
	b.ReportMetric(slow[0], "slowdown-%-1us")
	b.ReportMetric(slow[1], "slowdown-%-10us")
	b.ReportMetric(slow[2], "slowdown-%-100us")
}
