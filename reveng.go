package afterimage

import (
	"afterimage/internal/core"
	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

// This file reproduces the §4 reverse-engineering microbenchmarks. Each
// experiment boots fresh quiet machines (one per data point, exactly like
// the per-point runs behind the paper's figures) and reports the measured
// access times the figures plot.

const revengStride = 7 // lines, as in the paper's examples

// revLab builds one quiet machine for a microbenchmark point.
func (l *Lab) revLab(point int64) (*sim.Machine, *sim.Env) {
	cfg := sim.Quiet(sim.CoffeeLake(l.opts.Seed + point*7919))
	if l.opts.Model == Haswell {
		cfg = sim.Quiet(sim.Haswell(l.opts.Seed + point*7919))
	}
	m := sim.NewMachine(cfg)
	return m, m.Direct(m.NewProcess("bench"))
}

// Fig6Point is one bar of Figure 6.
type Fig6Point struct {
	MatchedBits int
	AccessTime  uint64
	Triggered   bool
}

// RevFig6 reproduces Figure 6: train IP_1, probe with an IP_2 sharing
// exactly n low bits, and time the would-be prefetch target. The prefetcher
// triggers iff n ≥ 8 (§4.1).
func (l *Lab) RevFig6() []Fig6Point {
	out := make([]Fig6Point, 0, 17)
	ip1 := uint64(0x0041_D2B5)
	for n := 0; n <= 16; n++ {
		m, env := l.revLab(int64(n))
		array := env.Mmap(mem.PageSize, mem.MapLocked)
		env.WarmTLB(array.Base)
		for i := 0; i < 4; i++ {
			env.Load(ip1, array.Base+mem.VAddr(i*revengStride*mem.LineSize))
		}
		ip2 := ip1 ^ (1 << uint(n)) // exactly n matching least-significant bits
		r := 30                     // probe line
		env.Load(ip2, array.Base+mem.VAddr(r*mem.LineSize))
		target := array.Base + mem.VAddr((r+revengStride)*mem.LineSize)
		t := env.TimeLoad(core.IPWithLow8(0x70_0000, core.ReloadIPLow8), target)
		out = append(out, Fig6Point{MatchedBits: n, AccessTime: t, Triggered: t < env.HitThreshold()})
		_ = m
	}
	return out
}

// Fig7Point describes the prefetcher's behaviour after tr2 iterations of
// the second training phase (Listing 3).
type Fig7Point struct {
	SecondPhaseIters int
	OldStrideFired   bool // st_1 target cached
	NewStrideFired   bool // st_2 target cached
}

// RevFig7 reproduces Figure 7's trigger-policy experiment for both
// scenarios: withOffset inserts a random jump between the phases (7a);
// otherwise phase 2 starts exactly one new stride after phase 1 (7b).
func (l *Lab) RevFig7(withOffset bool) []Fig7Point {
	const st1, st2 = 7, 5 // lines, as in §4.2
	var out []Fig7Point
	maxIters := 3
	if !withOffset {
		maxIters = 2
	}
	for tr2 := 1; tr2 <= maxIters; tr2++ {
		_, env := l.revLab(int64(100+tr2) + boolInt(withOffset)*10)
		array := env.Mmap(mem.PageSize, mem.MapLocked)
		env.WarmTLB(array.Base)
		ip := uint64(0x0041_00A1)
		// Phase 1: saturate with st_1.
		last := 0
		for i := 0; i < 4; i++ {
			last = i * st1
			env.Load(ip, array.Base+mem.VAddr(last*mem.LineSize))
		}
		// Phase 2 start: either a jump or the immediate next st_2 step.
		start := last + st2
		if withOffset {
			start = 38 // an arbitrary distant line
		}
		cur := start
		for i := 0; i < tr2; i++ {
			if i > 0 {
				cur += st2
			}
			env.Load(ip, array.Base+mem.VAddr(cur*mem.LineSize))
		}
		oldT := env.TimeLoad(core.IPWithLow8(0x70_0000, core.ReloadIPLow8), array.Base+mem.VAddr((cur+st1)*mem.LineSize))
		newT := env.TimeLoad(core.IPWithLow8(0x71_0000, core.ReloadIPLow8), array.Base+mem.VAddr((cur+st2)*mem.LineSize))
		out = append(out, Fig7Point{
			SecondPhaseIters: tr2,
			OldStrideFired:   oldT < env.HitThreshold(),
			NewStrideFired:   newT < env.HitThreshold(),
		})
	}
	return out
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	PageOffset    int
	Pool          string // "recl" or "lock"
	SharePhysical bool
	Prefetchable  bool
}

// RevTable1 reproduces the §4.3 page-boundary experiment: train on one
// page, touch a page `offset` pages away, and test whether the strided
// target arrives — for the frame-aliasing reclaimable pool and the pinned
// MAP_LOCKED pool.
func (l *Lab) RevTable1() []Table1Row {
	var out []Table1Row
	for _, pool := range []mem.MapKind{mem.MapReclaimable, mem.MapLocked} {
		for offset := 1; offset <= 4; offset++ {
			_, env := l.revLab(int64(200 + offset + int(pool)*10))
			array := env.Mmap(6*mem.PageSize, mem.MapLocked)
			if pool == mem.MapReclaimable {
				array = env.Mmap(6*mem.PageSize, mem.MapReclaimable)
			}
			ip := uint64(0x0041_00B7)
			env.WarmTLB(array.Base)
			for i := 0; i < 4; i++ {
				env.Load(ip, array.Base+mem.VAddr(i*revengStride*mem.LineSize))
			}
			// Touch the offset page WITHOUT pre-warming its translation —
			// the experiment's pages are first-touch (Listing 4).
			probe := array.Base + mem.VAddr(offset*mem.PageSize)
			env.Load(ip, probe)
			target := probe + mem.VAddr(revengStride*mem.LineSize)
			t := env.TimeLoad(core.IPWithLow8(0x70_0000, core.ReloadIPLow8), target)

			as := env.Process().AS
			p0, _ := as.Translate(array.Base)
			pN, _ := as.Translate(probe)
			name := "lock"
			if pool == mem.MapReclaimable {
				name = "recl"
			}
			out = append(out, Table1Row{
				PageOffset:    offset,
				Pool:          name,
				SharePhysical: p0.Frame() == pN.Frame(),
				Prefetchable:  t < env.HitThreshold(),
			})
		}
	}
	return out
}

// Fig8Point is one bar of Figure 8: whether the i-th trained IP still
// triggers after the full schedule.
type Fig8Point struct {
	Index      int
	AccessTime uint64
	Triggered  bool
}

// fig8Schedule trains IPs per the given plan on a fresh machine and
// measures point i. Each measurement gets its own machine, as in the
// per-point runs behind Figure 8 (measuring an evicted IP would itself
// allocate an entry).
func (l *Lab) fig8Point(seedOff int64, train func(env *sim.Env, pages []*mem.Mapping, ips []uint64), nIPs, i int) Fig8Point {
	_, env := l.revLab(300 + seedOff)
	ips := make([]uint64, nIPs)
	pages := make([]*mem.Mapping, nIPs)
	for k := 0; k < nIPs; k++ {
		ips[k] = 0x0041_0000 + uint64(k)
		pages[k] = env.Mmap(mem.PageSize, mem.MapLocked)
		env.WarmTLB(pages[k].Base)
	}
	train(env, pages, ips)
	// The many training pages may have evicted this page's dTLB entry;
	// re-warm it so the first-touch rule cannot mask the measurement (the
	// paper's STLB is large enough that this never bites on real parts).
	env.WarmTLB(pages[i].Base)
	env.Load(ips[i], pages[i].Base+mem.VAddr(45*mem.LineSize))
	target := pages[i].Base + mem.VAddr((45+revengStride)*mem.LineSize)
	t := env.TimeLoad(core.IPWithLow8(0x70_0000, core.ReloadIPLow8), target)
	return Fig8Point{Index: i, AccessTime: t, Triggered: t < env.HitThreshold()}
}

func trainAll(env *sim.Env, pages []*mem.Mapping, ips []uint64, from, to, rounds, offLines int) {
	for k := from; k < to; k++ {
		for r := 0; r < rounds; r++ {
			off := (r*revengStride + offLines) * mem.LineSize
			env.Load(ips[k], pages[k].Base+mem.VAddr(off))
		}
	}
}

// RevFig8a reproduces Figure 8a for a given number of trained IPs (the
// paper plots 26 and 30): the first n−24 IPs no longer trigger.
func (l *Lab) RevFig8a(n int) []Fig8Point {
	out := make([]Fig8Point, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, l.fig8Point(int64(n*100+i), func(env *sim.Env, pages []*mem.Mapping, ips []uint64) {
			trainAll(env, pages, ips, 0, n, 5, 0)
		}, n, i))
	}
	return out
}

// RevFig8b reproduces Figure 8b: fill 24 entries, re-touch the first 8,
// train 8 more — Bit-PLRU evicts positions 9–16.
func (l *Lab) RevFig8b() []Fig8Point {
	const total = 32
	schedule := func(env *sim.Env, pages []*mem.Mapping, ips []uint64) {
		trainAll(env, pages, ips, 0, 24, 5, 0)  // fill the table
		trainAll(env, pages, ips, 0, 8, 5, 5)   // re-touch first 8
		trainAll(env, pages, ips, 24, 32, 5, 0) // 8 fresh IPs
	}
	out := make([]Fig8Point, 0, 24)
	for i := 0; i < 24; i++ {
		out = append(out, l.fig8Point(int64(9000+i), schedule, total, i))
	}
	return out
}

// SGXRetention reproduces the §4.6 check: strided loads inside an enclave
// train the prefetcher, and the prefetched line is still cached after the
// enclave exits.
func (l *Lab) SGXRetention() (prefetchedHit bool, accessTime uint64) {
	_, env := l.revLab(400)
	buf := env.Mmap(mem.PageSize, mem.MapLocked)
	env.WarmTLB(buf.Base)
	var last mem.VAddr
	env.EnclaveCall(func(e *sim.Env) {
		for i := 0; i < 6; i++ {
			last = buf.Base + mem.VAddr(i*5*mem.LineSize)
			e.Load(0x7ff0_0000_2143, last)
		}
	})
	t := env.TimeLoad(core.IPWithLow8(0x70_0000, core.ReloadIPLow8), last+mem.VAddr(5*mem.LineSize))
	return t < env.HitThreshold(), t
}
