package afterimage

import (
	"context"
	"encoding/json"
	"fmt"

	"afterimage/internal/champsim"
	"afterimage/internal/power"
	"afterimage/internal/runner"
	"afterimage/internal/trace"
)

// MitigationOptions configures the §8.3 study.
type MitigationOptions struct {
	// Instructions per application trace (the paper replays 1 B; the
	// workloads are steady-state, so far fewer suffice for the shape).
	Instructions int
	// FlushIntervalCycles is the clear-ip-prefetcher period (30 000 cycles
	// = 10 µs at 3 GHz, the paper's emulated frequency).
	FlushIntervalCycles uint64
	Seed                int64
	// Runner supervises the per-application replays (worker count,
	// checkpoint/resume, retries). The zero value runs them sequentially;
	// any setting yields the same table. Fingerprint is derived from the
	// study options and must not be set by the caller.
	Runner runner.Options
}

// MitigationAppRow is one application's row in the study table.
type MitigationAppRow struct {
	Name            string
	Sensitive       bool
	BaseIPC         float64
	MitigatedIPC    float64
	NoPrefetchIPC   float64
	Slowdown        float64
	PrefetchBenefit float64
}

// MitigationResult is the full §8.3 outcome.
type MitigationResult struct {
	Rows []MitigationAppRow
	// Top8Slowdown and OverallSlowdown are the two numbers the paper
	// reports (0.7 % and 0.2 %).
	Top8Slowdown    float64
	OverallSlowdown float64
	// AnalyticUpperBound is the closed-form worst case (<7.3 %).
	AnalyticUpperBound float64
	// Degraded lists applications whose replay failed permanently; their
	// rows are absent and the slowdown means cover the remaining apps.
	Degraded []string `json:",omitempty"`
}

// RunMitigationStudy reproduces §8.3: the proposed clear-ip-prefetcher
// instruction flushed every 10 µs over SPEC-like traces, versus the
// analytic upper bound.
func RunMitigationStudy(opts MitigationOptions) (MitigationResult, error) {
	return RunMitigationStudyCtx(context.Background(), opts)
}

// RunMitigationStudyCtx is RunMitigationStudy under a campaign context: each
// application's three-way replay runs as one supervised job, so the study
// parallelises, checkpoints and resumes like the attack sweeps. An
// application that fails permanently is listed in Degraded instead of
// aborting the table.
func RunMitigationStudyCtx(ctx context.Context, opts MitigationOptions) (MitigationResult, error) {
	if opts.Instructions <= 0 {
		opts.Instructions = 200_000
	}
	if opts.FlushIntervalCycles == 0 {
		opts.FlushIntervalCycles = 30_000
	}
	cfg := champsim.DefaultConfig()
	profiles := trace.SPECLike()

	jobs := make([]runner.Job, len(profiles))
	for i, p := range profiles {
		p := p
		jobs[i] = runner.Job{
			Key: fmt.Sprintf("mitigation/%02d@%s", i, p.Name),
			Run: func(context.Context, int) (any, error) {
				return champsim.RunApp(cfg, p, opts.Instructions,
					opts.FlushIntervalCycles, opts.Seed+7)
			},
		}
	}

	ropts := opts.Runner
	if ropts.Seed == 0 {
		ropts.Seed = opts.Seed + 7
	}
	ropts.Fingerprint = runner.Fingerprint(struct {
		Kind         string
		Cfg          champsim.Config
		Instructions int
		Flush        uint64
		Seed         int64
	}{"mitigation-study/1", cfg, opts.Instructions, opts.FlushIntervalCycles, opts.Seed})

	jrs, rerr := runner.Run(ctx, jobs, ropts)

	out := MitigationResult{
		AnalyticUpperBound: champsim.AnalyticUpperBound(
			cfg.IPStride.Entries, 300, 100e-6, cfg.GHz),
	}
	var results []champsim.AppResult
	for i, jr := range jrs {
		if jr.Skipped {
			continue
		}
		if jr.Degraded {
			out.Degraded = append(out.Degraded, profiles[i].Name)
			continue
		}
		var r champsim.AppResult
		if uerr := json.Unmarshal(jr.Value, &r); uerr != nil {
			if rerr == nil {
				rerr = fmt.Errorf("mitigation: corrupt app result %q: %w", jr.Key, uerr)
			}
			continue
		}
		results = append(results, r)
		out.Rows = append(out.Rows, MitigationAppRow{
			Name:            r.Profile.Name,
			Sensitive:       r.Profile.PrefetchSensitive(),
			BaseIPC:         r.Base.IPC(),
			MitigatedIPC:    r.Mitigated.IPC(),
			NoPrefetchIPC:   r.NoPrefetch.IPC(),
			Slowdown:        r.Slowdown(),
			PrefetchBenefit: r.PrefetchBenefit(),
		})
	}
	out.Top8Slowdown, out.OverallSlowdown = champsim.Summary(results, 8)
	return out, rerr
}

// TTestResult carries one Figure 16 curve.
type TTestResult struct {
	Aligned bool
	Counts  []int
	TValues []float64
}

// FinalT is the last point of the curve.
func (r TTestResult) FinalT() float64 {
	if len(r.TValues) == 0 {
		return 0
	}
	return r.TValues[len(r.TValues)-1]
}

// RunTTest reproduces Figure 16: the TVLA fixed-vs-random t-test over AES
// S-box power traces, sampled at the AfterImage-recovered operation time
// (aligned) or at random instants.
func RunTTest(aligned bool, seed int64) TTestResult {
	cfg := power.DefaultCurveConfig()
	cfg.Power.Seed = seed + 1
	counts, ts := power.Curve(cfg, aligned)
	return TTestResult{Aligned: aligned, Counts: counts, TValues: ts}
}

// CPAOutcome reports a correlation-power-analysis key-byte recovery.
type CPAOutcome struct {
	Aligned             bool
	Recovered           bool
	RecoveredKey        byte
	TrueKey             byte
	PeakCorrelation     float64
	RunnerUpCorrelation float64
	Traces              int
}

// RunCPAAttack extends Figure 16 from assessment to exploitation: classic
// first-round CPA over n traces, sampled at AfterImage-recovered timing
// (aligned) or randomly. With alignment the key byte falls; without it the
// correlation peak drowns.
func RunCPAAttack(aligned bool, traces int, seed int64) CPAOutcome {
	if traces <= 0 {
		traces = 3000
	}
	cfg := power.DefaultConfig()
	cfg.Seed = seed + 1
	r := power.RunCPA(cfg, traces, aligned)
	return CPAOutcome{
		Aligned:             aligned,
		Recovered:           r.Success(),
		RecoveredKey:        r.RecoveredKey,
		TrueKey:             r.TrueKey,
		PeakCorrelation:     r.PeakCorrelation,
		RunnerUpCorrelation: r.RunnerUpCorrelation,
		Traces:              r.Traces,
	}
}
