package afterimage

// One benchmark per table and figure of the paper (DESIGN.md carries the
// full index). Each benchmark regenerates its experiment per iteration and
// reports the figure's headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction harness: the reported metrics are the values
// EXPERIMENTS.md compares against the paper.

import (
	"testing"
)

// BenchmarkFig6IndexBits regenerates Figure 6 (prefetcher indexing: the
// trigger boundary at 8 matched low IP bits).
func BenchmarkFig6IndexBits(b *testing.B) {
	var triggered, hitT, missT float64
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1), Quiet: true})
		pts := lab.RevFig6()
		triggered = 0
		for _, p := range pts {
			if p.Triggered {
				triggered++
				hitT = float64(p.AccessTime)
			} else {
				missT = float64(p.AccessTime)
			}
		}
	}
	b.ReportMetric(triggered, "triggered-of-17")
	b.ReportMetric(hitT, "hit-cycles")
	b.ReportMetric(missT, "miss-cycles")
}

// BenchmarkFig7TriggerPolicy regenerates Figure 7 (both scenarios).
func BenchmarkFig7TriggerPolicy(b *testing.B) {
	correct := 0.0
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1), Quiet: true})
		a := lab.RevFig7(true)
		bb := lab.RevFig7(false)
		correct = 0
		if a[0].OldStrideFired && !a[0].NewStrideFired {
			correct++
		}
		if !a[1].OldStrideFired && !a[1].NewStrideFired {
			correct++
		}
		if !a[2].OldStrideFired && a[2].NewStrideFired {
			correct++
		}
		if bb[0].OldStrideFired && !bb[0].NewStrideFired {
			correct++
		}
		if !bb[1].OldStrideFired && bb[1].NewStrideFired {
			correct++
		}
	}
	b.ReportMetric(correct, "policy-points-of-5")
}

// BenchmarkTable1PageBoundary regenerates Table 1 (page-boundary checking).
func BenchmarkTable1PageBoundary(b *testing.B) {
	matching := 0.0
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1), Quiet: true})
		matching = 0
		for _, r := range lab.RevTable1() {
			want := r.Pool == "recl" || r.PageOffset == 1
			if r.Prefetchable == want {
				matching++
			}
		}
	}
	b.ReportMetric(matching, "rows-matching-of-8")
}

// BenchmarkFig8aEntries regenerates Figure 8a (24-entry capacity).
func BenchmarkFig8aEntries(b *testing.B) {
	entries := 0.0
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1), Quiet: true})
		pts := lab.RevFig8a(26)
		alive := 0
		for _, p := range pts {
			if p.Triggered {
				alive++
			}
		}
		entries = float64(alive)
	}
	b.ReportMetric(entries, "entries")
}

// BenchmarkFig8bReplacement regenerates Figure 8b (Bit-PLRU eviction of
// positions 9–16).
func BenchmarkFig8bReplacement(b *testing.B) {
	correct := 0.0
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1), Quiet: true})
		correct = 0
		for _, p := range lab.RevFig8b() {
			want := p.Index < 8 || p.Index >= 16
			if p.Triggered == want {
				correct++
			}
		}
	}
	b.ReportMetric(correct, "positions-of-24")
}

// BenchmarkFig13aV1PrimeProbe regenerates Figure 13a (single if-path bit via
// Prime+Probe).
func BenchmarkFig13aV1PrimeProbe(b *testing.B) {
	rate := 0.0
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1)})
		res := lab.RunVariant1(V1Options{Secret: []bool{true}, Backend: PrimeProbe})
		rate = res.SuccessRate()
	}
	b.ReportMetric(rate*100, "success-%")
}

// BenchmarkFig13bRounds regenerates Figure 13b (round-by-round P+P, b'10).
func BenchmarkFig13bRounds(b *testing.B) {
	rate := 0.0
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1)})
		res := lab.RunVariant1(V1Options{Secret: []bool{false, true}, Backend: PrimeProbe})
		rate = res.SuccessRate()
	}
	b.ReportMetric(rate*100, "success-%")
}

// BenchmarkFig13cCrossProcess regenerates Figure 13c (cross-process F+R).
func BenchmarkFig13cCrossProcess(b *testing.B) {
	rate := 0.0
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1)})
		res := lab.RunVariant1(V1Options{Bits: 16, CrossProcess: true})
		rate = res.SuccessRate()
	}
	b.ReportMetric(rate*100, "success-%")
}

// BenchmarkFig14aKernel regenerates Figure 14a (V2 with IP search).
func BenchmarkFig14aKernel(b *testing.B) {
	found := 0.0
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1), Quiet: true})
		res := lab.RunVariant2(V2Options{Bits: 8, UseIPSearch: true})
		if res.IPSearched && res.FoundIPLow8 == 0xA7 {
			found = 1
		} else {
			found = 0
		}
	}
	b.ReportMetric(found, "ip-found")
}

// BenchmarkFig14bCovert regenerates Figure 14b / §7.2's covert channel
// (single entry: 833 bps, <6 % errors).
func BenchmarkFig14bCovert(b *testing.B) {
	var bps, errRate float64
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1)})
		res := lab.RunCovertChannel(CovertOptions{Message: make([]byte, 64)})
		bps = res.RawBps(1.0 / 3e9)
		errRate = res.ErrorRate()
	}
	b.ReportMetric(bps, "bps")
	b.ReportMetric(errRate*100, "err-%")
}

// BenchmarkFig14cRSAPSC regenerates Figure 14c (per-bit PSC extraction of
// an 8-bit key pattern b'01010101).
func BenchmarkFig14cRSAPSC(b *testing.B) {
	rate := 0.0
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1)})
		res := lab.ExtractRSAKey(RSAOptions{KeyBits: 64, ItersPerBit: 5, VictimIterationCycles: 6000})
		rate = res.BitSuccessRate()
	}
	b.ReportMetric(rate*100, "bits-%")
}

// BenchmarkFig15LoadTiming regenerates Figure 15 (OpenSSL phase onsets).
func BenchmarkFig15LoadTiming(b *testing.B) {
	ok := 0.0
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1)})
		keyLoad, decrypt := lab.TrackOpenSSL()
		if keyLoad.OnsetIndex >= 0 && decrypt.OnsetIndex > keyLoad.OnsetIndex {
			ok = 1
		} else {
			ok = 0
		}
	}
	b.ReportMetric(ok, "onsets-ordered")
}

// BenchmarkFig16TTest regenerates Figure 16 (t-test with accurate vs random
// timing).
func BenchmarkFig16TTest(b *testing.B) {
	var aligned, random float64
	for i := 0; i < b.N; i++ {
		a := RunTTest(true, int64(i+1))
		r := RunTTest(false, int64(i+1))
		aligned, random = a.FinalT(), r.FinalT()
	}
	b.ReportMetric(aligned, "t-aligned")
	b.ReportMetric(random, "t-random")
}

// BenchmarkTable3SuccessRates regenerates the §7.2 success-rate summary
// (V1 cross-thread / cross-process / V2) at a reduced round count per
// iteration; cmd/afterimage-experiments runs the full 200 rounds.
func BenchmarkTable3SuccessRates(b *testing.B) {
	var v1, v1x, v2 float64
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		v1 = NewLab(Options{Seed: seed}).RunVariant1(V1Options{Bits: 50}).SuccessRate()
		v1x = NewLab(Options{Seed: seed + 1}).RunVariant1(V1Options{Bits: 50, CrossProcess: true}).SuccessRate()
		v2 = NewLab(Options{Seed: seed + 2}).RunVariant2(V2Options{Bits: 50}).SuccessRate()
	}
	b.ReportMetric(v1*100, "v1-thread-%")
	b.ReportMetric(v1x*100, "v1-process-%")
	b.ReportMetric(v2*100, "v2-kernel-%")
}

// BenchmarkRSAKeyExtraction regenerates the §7.3 budget: per-bit time under
// the -O0 victim profile, extrapolated to the paper's 1024-bit key.
func BenchmarkRSAKeyExtraction(b *testing.B) {
	var minutes1024 float64
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1)})
		res := lab.ExtractRSAKey(RSAOptions{KeyBits: 64, ItersPerBit: 5})
		perBit := lab.Seconds(res.Cycles) / float64(res.BitsTotal)
		minutes1024 = perBit * 1024 / 60
	}
	b.ReportMetric(minutes1024, "min-per-1024b")
}

// BenchmarkMitigationOverhead regenerates §8.3 (clear-ip-prefetcher cost).
func BenchmarkMitigationOverhead(b *testing.B) {
	var top8, overall float64
	for i := 0; i < b.N; i++ {
		res, err := RunMitigationStudy(MitigationOptions{Instructions: 60_000, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		top8, overall = res.Top8Slowdown, res.OverallSlowdown
	}
	b.ReportMetric(top8*100, "top8-slowdown-%")
	b.ReportMetric(overall*100, "overall-slowdown-%")
}

// BenchmarkSGXLeak covers the §5.4 / Figure 10 enclave channel.
func BenchmarkSGXLeak(b *testing.B) {
	rate := 0.0
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1), Quiet: true})
		rate = lab.RunSGX(16, nil).SuccessRate()
	}
	b.ReportMetric(rate*100, "success-%")
}

// benchSweep runs one full fault-sweep campaign — the hotpathSweepOptions
// ladder (five intensities over the V1 cross-thread attack) with a 400k-load
// preconditioning trace per point — under the given execution mode. The two
// modes are bit-identical point for point (gated by the fork-vs-fresh
// differential suite, warmup included), so the pair measures exactly the
// snapshot-fork saving: the fresh mode boots AND re-warms every point, the
// forked mode warms one template per campaign and deep-copies it per point.
func benchSweep(b *testing.B, mode SweepExecMode) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := hotpathSweepOptions()
		o.Warmup = 400_000
		o.Execution = mode
		res := NewLab(Options{Seed: 42, Quiet: true}).RunFaultSweep(o)
		if len(res.Points) != len(o.Intensities) {
			b.Fatalf("sweep returned %d points, want %d", len(res.Points), len(o.Intensities))
		}
	}
}

// BenchmarkSweepForked measures the default campaign path: one warmed
// template, one Machine.Fork per point.
func BenchmarkSweepForked(b *testing.B) { benchSweep(b, SweepForked) }

// BenchmarkSweepFresh is the pre-fork behaviour (a full lab boot per point),
// kept as the baseline the forked mode is compared against.
func BenchmarkSweepFresh(b *testing.B) { benchSweep(b, SweepFresh) }

// BenchmarkV1TelemetryOff measures the full Variant-1 attack with telemetry
// in its default state: phase accounting on (always), event recording off.
// This is the seed-equivalent configuration — compare against
// BenchmarkV1TelemetryTrace to bound the disabled-path overhead:
//
//	go test -bench 'BenchmarkV1Telemetry' -count 10 .
//
// The disabled path must stay within noise (<2%) of the seed: every Emit
// site is guarded by Hub.TraceEnabled (two compares, no event construction).
func BenchmarkV1TelemetryOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1), Quiet: true})
		lab.RunVariant1(V1Options{Bits: 16})
	}
}

// BenchmarkV1TelemetryTrace is the same attack with full event recording into
// the default 256k ring — the price of -trace, for comparison.
func BenchmarkV1TelemetryTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := NewLab(Options{Seed: int64(i + 1), Quiet: true})
		lab.EnableTrace(0)
		lab.RunVariant1(V1Options{Bits: 16})
	}
}
