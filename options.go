package afterimage

import "fmt"

// OptionError is the typed validation failure every exported option struct
// produces for out-of-range configuration: which struct, which field, the
// offending value, and the constraint it violates. Callers match it with
// errors.As to distinguish caller bugs from simulator faults.
type OptionError struct {
	Struct     string
	Field      string
	Value      any
	Constraint string
}

// Error formats the violation.
func (e *OptionError) Error() string {
	return fmt.Sprintf("afterimage: %s.%s = %v violates %s", e.Struct, e.Field, e.Value, e.Constraint)
}

// optErr builds an OptionError.
func optErr(strct, field string, value any, constraint string) error {
	return &OptionError{Struct: strct, Field: field, Value: value, Constraint: constraint}
}

// MaxCovertEntries is the prefetcher history-table size (Figure 8a): the
// covert channel cannot drive more concurrent lanes than the table holds.
const MaxCovertEntries = 24

// maxStrideLines is the largest trainable line stride: strides are stored
// as byte deltas truncated to |stride| < 2048 bytes (§4.2), i.e. at most
// 31 whole 64-byte lines.
const maxStrideLines = 31

// Validate rejects out-of-range lab configuration. Zero values mean
// "default" throughout and always pass.
func (o Options) Validate() error {
	if o.AuditEvery < 0 {
		return optErr("Options", "AuditEvery", o.AuditEvery, ">= 0 (0 disables the cadence)")
	}
	return nil
}

// Validate rejects out-of-range covert-channel configuration. Zero values
// mean "default" (Entries 1, SlotCycles 9 000 000, InterleaveDepth 35).
func (o CovertOptions) Validate() error {
	if o.Entries < 0 || o.Entries > MaxCovertEntries {
		return optErr("CovertOptions", "Entries", o.Entries,
			fmt.Sprintf("0 (default) or 1..%d (the history table has %d entries)", MaxCovertEntries, MaxCovertEntries))
	}
	if o.InterleaveDepth < 0 {
		return optErr("CovertOptions", "InterleaveDepth", o.InterleaveDepth, ">= 1 (0 means default 35)")
	}
	return nil
}

// validStride reports whether a line stride is trainable: 0 (default) or
// within the prefetcher's |stride| < 2 KiB representable range.
func validStride(s int64) bool { return s >= 0 && s <= maxStrideLines }

// Validate rejects out-of-range Variant 1 configuration. It runs after the
// defaults are filled, so both strides are non-zero by then; they must be
// distinct — the decoder tells the two paths apart by stride.
func (o V1Options) Validate() error {
	if o.Bits < 0 {
		return optErr("V1Options", "Bits", o.Bits, ">= 0")
	}
	if !validStride(o.IfStride) {
		return optErr("V1Options", "IfStride", o.IfStride,
			fmt.Sprintf("1..%d lines (|stride| < 2 KiB)", maxStrideLines))
	}
	if !validStride(o.ElseStride) {
		return optErr("V1Options", "ElseStride", o.ElseStride,
			fmt.Sprintf("1..%d lines (|stride| < 2 KiB)", maxStrideLines))
	}
	if o.IfStride != 0 && o.IfStride == o.ElseStride {
		return optErr("V1Options", "ElseStride", o.ElseStride, "distinct from IfStride (the decoder keys on stride)")
	}
	return nil
}

// Validate rejects out-of-range Variant 2 configuration.
func (o V2Options) Validate() error {
	if o.Bits < 0 {
		return optErr("V2Options", "Bits", o.Bits, ">= 0")
	}
	if !validStride(o.Stride) {
		return optErr("V2Options", "Stride", o.Stride,
			fmt.Sprintf("1..%d lines (|stride| < 2 KiB)", maxStrideLines))
	}
	return nil
}

// Validate rejects out-of-range RSA-extraction configuration.
func (o RSAOptions) Validate() error {
	if o.KeyBits != 0 && (o.KeyBits < 16 || o.KeyBits > 4096) {
		return optErr("RSAOptions", "KeyBits", o.KeyBits, "16..4096 (0 means default 128)")
	}
	if o.ItersPerBit < 0 {
		return optErr("RSAOptions", "ItersPerBit", o.ItersPerBit, ">= 1 (0 means default 5)")
	}
	return nil
}

// Validate rejects out-of-range sweep configuration.
func (o SweepOptions) Validate() error {
	if o.Bits < 0 {
		return optErr("SweepOptions", "Bits", o.Bits, ">= 0 (0 means default 32)")
	}
	for i, x := range o.Intensities {
		if x < 0 {
			return optErr("SweepOptions", fmt.Sprintf("Intensities[%d]", i), x, ">= 0")
		}
	}
	if o.Execution != SweepForked && o.Execution != SweepFresh {
		return optErr("SweepOptions", "Execution", int(o.Execution), "SweepForked or SweepFresh")
	}
	return nil
}

// ExtractRSAKeyE is ExtractRSAKey with validation and graceful failure: bad
// options surface as a typed *OptionError, simulator faults as a *SimFault.
func (l *Lab) ExtractRSAKeyE(opts RSAOptions) (res RSAResult, err error) {
	defer recoverAsError(&err)
	if verr := opts.Validate(); verr != nil {
		return RSAResult{}, verr
	}
	return l.ExtractRSAKey(opts), nil
}
