package afterimage

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"afterimage/internal/runner"
)

// Report is the machine-readable summary of a full reproduction run: every
// headline quantity of EXPERIMENTS.md in one JSON-serialisable structure,
// so regressions in the model show up as diffs.
type Report struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Model  string `json:"model"`

	ReverseEngineering struct {
		Fig6BoundaryBits     int  `json:"fig6_boundary_bits"`
		Fig7PolicyExact      bool `json:"fig7_policy_exact"`
		Table1RowsMatching   int  `json:"table1_rows_matching"`
		Fig8aEntries         int  `json:"fig8a_entries"`
		Fig8bBitPLRUMatching bool `json:"fig8b_bitplru_matching"`
		SGXRetention         bool `json:"sgx_retention"`
	} `json:"reverse_engineering"`

	Attacks struct {
		V1ThreadSuccess  float64 `json:"v1_thread_success"`
		V1ProcessSuccess float64 `json:"v1_process_success"`
		V2KernelSuccess  float64 `json:"v2_kernel_success"`
		SGXSuccess       float64 `json:"sgx_success"`
		IPSearchFound    bool    `json:"ip_search_found"`
	} `json:"attacks"`

	Covert struct {
		SingleEntryBps   float64 `json:"single_entry_bps"`
		SingleEntryError float64 `json:"single_entry_error"`
		MaxEntriesBps    float64 `json:"max_entries_bps"`
		MaxEntriesError  float64 `json:"max_entries_error"`
	} `json:"covert"`

	RSA struct {
		BitSuccess        float64 `json:"bit_success"`
		PSCObservation    float64 `json:"psc_observation_accuracy"`
		Minutes1024Budget float64 `json:"minutes_1024_budget"`
	} `json:"rsa"`

	Power struct {
		AlignedFinalT float64 `json:"aligned_final_t"`
		RandomFinalT  float64 `json:"random_final_t"`
	} `json:"power"`

	Mitigation struct {
		Top8Slowdown    float64 `json:"top8_slowdown"`
		OverallSlowdown float64 `json:"overall_slowdown"`
		AnalyticBound   float64 `json:"analytic_bound"`
	} `json:"mitigation"`

	Comparison struct {
		BPUCycles        uint64  `json:"bpu_cycles"`
		PrefetcherCycles uint64  `json:"prefetcher_cycles"`
		Advantage        float64 `json:"advantage"`
	} `json:"comparison"`

	// Phases breaks the V1 thread-scenario run down by attack phase
	// (train/trigger/probe/decode): spans executed and simulated cycles per
	// phase, from the telemetry hub's always-on phase accounting.
	Phases []PhaseSummary `json:"phases,omitempty"`

	// Degraded lists experiments that failed permanently under the
	// supervised runner; their headline numbers read as zero values.
	Degraded []string `json:"degraded,omitempty"`

	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// ReportOptions scales the report's sampling effort.
type ReportOptions struct {
	Seed int64
	// Rounds per success-rate estimate (the paper uses 200).
	Rounds int
	// MitigationInstructions per traced application.
	MitigationInstructions int
	// Runner supervises the Table 3 attack runs and the mitigation replays
	// (worker count, checkpoint/resume, retries, per-job deadline). The
	// zero value is sequential; any setting produces the same report.
	// Fingerprint is derived per campaign and must not be set.
	Runner runner.Options
	// AuditEvery propagates the invariant-audit cadence (Options.AuditEvery)
	// into every Table 3 lab. Audits are read-only, so any setting produces
	// the same report; a failing audit degrades that experiment.
	AuditEvery int
}

// FullReport runs the complete reproduction suite and returns the report.
// Expensive, deterministic per seed.
func FullReport(opts ReportOptions) (*Report, error) {
	return FullReportCtx(context.Background(), opts)
}

// table3Val is the JSON unit one supervised Table 3 job returns: whichever
// of the fields its attack produces, plus the per-phase accounting from the
// job's lab.
type table3Val struct {
	Success float64 `json:"success,omitempty"`
	IPFound bool    `json:"ip_found,omitempty"`
	Bps     float64 `json:"bps,omitempty"`
	ErrRate float64 `json:"err_rate,omitempty"`
	// StateHash is the machine's full-state hash after the attack — the
	// replay harness's divergence oracle. Checkpoint-internal: it rides in
	// the runner checkpoint but never surfaces in the Report schema.
	StateHash uint64         `json:"state_hash,omitempty"`
	Phases    []PhaseSummary `json:"phases,omitempty"`
}

// derivedCheckpoint namespaces one checkpoint path per campaign, so a
// report run that hosts several supervised campaigns (Table 3, mitigation)
// can hand each its own resumable file from a single user-supplied stem.
func derivedCheckpoint(path, tag string) string {
	if path == "" {
		return ""
	}
	return path + "." + tag
}

// table3Spec is one supervised Table 3 experiment: its checkpoint key and
// the attack it runs against a fresh lab.
type table3Spec struct {
	key string
	run func(ctx context.Context, lab *Lab) (table3Val, error)
}

// table3Specs enumerates the Table 3 experiments in their historic order
// (the index doubles as the seed offset).
func table3Specs(opts ReportOptions) []table3Spec {
	perCycle := 1.0 / 3e9
	return []table3Spec{
		{"v1-thread", func(_ context.Context, lab *Lab) (table3Val, error) {
			res, err := lab.RunVariant1E(V1Options{Bits: opts.Rounds})
			return table3Val{Success: res.SuccessRate()}, err
		}},
		{"v1-process", func(_ context.Context, lab *Lab) (table3Val, error) {
			res, err := lab.RunVariant1E(V1Options{Bits: opts.Rounds, CrossProcess: true})
			return table3Val{Success: res.SuccessRate()}, err
		}},
		{"v2-kernel", func(_ context.Context, lab *Lab) (table3Val, error) {
			res, err := lab.RunVariant2E(V2Options{Bits: opts.Rounds})
			return table3Val{Success: res.SuccessRate()}, err
		}},
		{"sgx", func(_ context.Context, lab *Lab) (table3Val, error) {
			res, err := lab.RunSGXE(opts.Rounds, nil)
			return table3Val{Success: res.SuccessRate()}, err
		}},
		{"ip-search", func(_ context.Context, lab *Lab) (table3Val, error) {
			res, err := lab.RunVariant2E(V2Options{Bits: 4, UseIPSearch: true})
			return table3Val{IPFound: res.IPSearched && res.FoundIPLow8 == 0xA7}, err
		}},
		{"covert-1", func(_ context.Context, lab *Lab) (table3Val, error) {
			res, err := lab.RunCovertChannelE(CovertOptions{Message: make([]byte, 128)})
			return table3Val{Bps: res.RawBps(perCycle), ErrRate: res.ErrorRate()}, err
		}},
		{"covert-24", func(_ context.Context, lab *Lab) (table3Val, error) {
			res, err := lab.RunCovertChannelE(CovertOptions{Message: make([]byte, 128), Entries: 24})
			return table3Val{Bps: res.RawBps(perCycle), ErrRate: res.ErrorRate()}, err
		}},
	}
}

// table3LabOptions is the lab configuration for the i-th Table 3 experiment.
// Seeds keep the historic sequential layout (+0 … +6) so numbers match older
// reports exactly.
func table3LabOptions(opts ReportOptions, i int, key string) Options {
	labOpts := Options{Seed: opts.Seed + int64(i), AuditEvery: opts.AuditEvery}
	if key == "ip-search" {
		labOpts.Quiet = true
	}
	return labOpts
}

// runTable3Spec boots a fresh lab and executes one Table 3 experiment:
// attack, then a final invariant audit (silent state corruption becomes a
// typed FaultCorruption), then the full-state hash for replay comparison.
// The replay harness calls this directly to re-derive a checkpoint's values.
func runTable3Spec(ctx context.Context, labOpts Options, spec table3Spec) (table3Val, error) {
	lab := NewLab(labOpts)
	lab.ArmCancel(ctx)
	val, err := spec.run(ctx, lab)
	if err == nil {
		err = lab.m.Audit()
	}
	val.Phases = lab.PhaseSummaries()
	val.StateHash = lab.m.StateHash()
	return val, err
}

// table3Jobs builds the supervised job list for the Table 3 campaign.
func table3Jobs(opts ReportOptions) []runner.Job {
	specs := table3Specs(opts)
	jobs := make([]runner.Job, len(specs))
	for i, t := range specs {
		i, t := i, t
		labOpts := table3LabOptions(opts, i, t.key)
		jobs[i] = runner.Job{
			Key: t.key,
			Run: func(jctx context.Context, _ int) (any, error) {
				return runTable3Spec(jctx, labOpts, t)
			},
		}
	}
	return jobs
}

// table3Fingerprint identifies the Table 3 campaign for checkpoint
// resume/replay. AuditEvery is deliberately absent: audits are read-only,
// so a cadence change does not invalidate recorded results.
func table3Fingerprint(opts ReportOptions) string {
	return runner.Fingerprint(struct {
		Kind   string
		Seed   int64
		Rounds int
	}{"full-report-table3/1", opts.Seed, opts.Rounds})
}

// FullReportCtx is FullReport under a campaign context: the Table 3 attack
// runs and the §8.3 mitigation replays execute as supervised jobs (parallel
// workers, retry-with-backoff, checkpoint/resume when opts.Runner asks for
// them), while the cheap deterministic sections (reverse engineering, RSA,
// power, comparison) stay inline. Experiments that fail permanently land in
// Report.Degraded with zero-valued numbers instead of aborting the report.
// When a checkpoint path is configured, the report's campaigns each persist
// under a derived name (<path>.table3, <path>.mitigation).
func FullReportCtx(ctx context.Context, opts ReportOptions) (*Report, error) {
	if opts.Rounds <= 0 {
		opts.Rounds = 100
	}
	if opts.MitigationInstructions <= 0 {
		opts.MitigationInstructions = 120_000
	}
	start := time.Now()
	r := &Report{Schema: "afterimage-report/1", Seed: opts.Seed}

	// Reverse engineering (quiet machines).
	q := NewLab(Options{Seed: opts.Seed, Quiet: true})
	r.Model = q.ModelName()
	boundary := -1
	for _, p := range q.RevFig6() {
		if p.Triggered {
			boundary = p.MatchedBits
			break
		}
	}
	r.ReverseEngineering.Fig6BoundaryBits = boundary

	a, b := q.RevFig7(true), q.RevFig7(false)
	r.ReverseEngineering.Fig7PolicyExact =
		len(a) == 3 && a[0].OldStrideFired && !a[0].NewStrideFired &&
			!a[1].OldStrideFired && !a[1].NewStrideFired &&
			!a[2].OldStrideFired && a[2].NewStrideFired &&
			len(b) == 2 && b[0].OldStrideFired && !b[1].OldStrideFired && b[1].NewStrideFired

	for _, row := range q.RevTable1() {
		want := row.Pool == "recl" || row.PageOffset == 1
		if row.Prefetchable == want {
			r.ReverseEngineering.Table1RowsMatching++
		}
	}
	alive := 0
	for _, p := range q.RevFig8a(26) {
		if p.Triggered {
			alive++
		}
	}
	r.ReverseEngineering.Fig8aEntries = alive
	match8b := true
	for _, p := range q.RevFig8b() {
		if p.Triggered != (p.Index < 8 || p.Index >= 16) {
			match8b = false
		}
	}
	r.ReverseEngineering.Fig8bBitPLRUMatching = match8b
	r.ReverseEngineering.SGXRetention, _ = q.SGXRetention()

	// Attack success rates (noisy machines, fresh lab per experiment) and the
	// covert channel — Table 3 — as supervised jobs. Seeds match the historic
	// sequential layout (+0 … +6) so the numbers are unchanged.
	jobs := table3Jobs(opts)
	ropts := opts.Runner
	if ropts.Seed == 0 {
		ropts.Seed = opts.Seed
	}
	ropts.CheckpointPath = derivedCheckpoint(opts.Runner.CheckpointPath, "table3")
	ropts.Fingerprint = table3Fingerprint(opts)
	jrs, rerr := runner.Run(ctx, jobs, ropts)
	if rerr != nil {
		return nil, fmt.Errorf("table 3 runs: %w", rerr)
	}
	vals := make(map[string]table3Val, len(jrs))
	for _, jr := range jrs {
		if jr.Skipped {
			continue
		}
		if jr.Degraded {
			r.Degraded = append(r.Degraded, jr.Key)
			continue
		}
		var v table3Val
		if err := json.Unmarshal(jr.Value, &v); err != nil {
			return nil, fmt.Errorf("table 3 run %q: corrupt value: %w", jr.Key, err)
		}
		vals[jr.Key] = v
	}
	r.Attacks.V1ThreadSuccess = vals["v1-thread"].Success
	r.Phases = vals["v1-thread"].Phases
	r.Attacks.V1ProcessSuccess = vals["v1-process"].Success
	r.Attacks.V2KernelSuccess = vals["v2-kernel"].Success
	r.Attacks.SGXSuccess = vals["sgx"].Success
	r.Attacks.IPSearchFound = vals["ip-search"].IPFound
	r.Covert.SingleEntryBps = vals["covert-1"].Bps
	r.Covert.SingleEntryError = vals["covert-1"].ErrRate
	r.Covert.MaxEntriesBps = vals["covert-24"].Bps
	r.Covert.MaxEntriesError = vals["covert-24"].ErrRate

	// RSA.
	rsaLab := NewLab(Options{Seed: opts.Seed + 7})
	rr := rsaLab.ExtractRSAKey(RSAOptions{KeyBits: 64, ItersPerBit: 5})
	r.RSA.BitSuccess = rr.BitSuccessRate()
	r.RSA.PSCObservation = rr.PSCSuccessRate()
	perBit := rsaLab.Seconds(rr.Cycles) / float64(rr.BitsTotal)
	r.RSA.Minutes1024Budget = perBit * 1024 / 60

	// Power.
	r.Power.AlignedFinalT = RunTTest(true, opts.Seed).FinalT()
	r.Power.RandomFinalT = RunTTest(false, opts.Seed).FinalT()

	// Mitigation (its own supervised campaign, own derived checkpoint).
	mropts := opts.Runner
	mropts.CheckpointPath = derivedCheckpoint(opts.Runner.CheckpointPath, "mitigation")
	mit, err := RunMitigationStudyCtx(ctx, MitigationOptions{
		Instructions: opts.MitigationInstructions, Seed: opts.Seed,
		Runner: mropts,
	})
	if err != nil {
		return nil, fmt.Errorf("mitigation study: %w", err)
	}
	for _, name := range mit.Degraded {
		r.Degraded = append(r.Degraded, "mitigation/"+name)
	}
	r.Mitigation.Top8Slowdown = mit.Top8Slowdown
	r.Mitigation.OverallSlowdown = mit.OverallSlowdown
	r.Mitigation.AnalyticBound = mit.AnalyticUpperBound

	// Comparison.
	cmp := CompareTrainingCosts(opts.Seed)
	r.Comparison.BPUCycles = cmp.BPUCycles
	r.Comparison.PrefetcherCycles = cmp.PrefetcherCycles
	r.Comparison.Advantage = cmp.Advantage()

	r.ElapsedSeconds = time.Since(start).Seconds()
	return r, nil
}

// JSON renders the report with stable indentation.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// jsonUnmarshal is a seam for tests (and avoids importing encoding/json in
// test files).
func jsonUnmarshal(b []byte, v interface{}) error { return json.Unmarshal(b, v) }
