package afterimage

import (
	"encoding/json"
	"fmt"
	"time"
)

// Report is the machine-readable summary of a full reproduction run: every
// headline quantity of EXPERIMENTS.md in one JSON-serialisable structure,
// so regressions in the model show up as diffs.
type Report struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Model  string `json:"model"`

	ReverseEngineering struct {
		Fig6BoundaryBits     int  `json:"fig6_boundary_bits"`
		Fig7PolicyExact      bool `json:"fig7_policy_exact"`
		Table1RowsMatching   int  `json:"table1_rows_matching"`
		Fig8aEntries         int  `json:"fig8a_entries"`
		Fig8bBitPLRUMatching bool `json:"fig8b_bitplru_matching"`
		SGXRetention         bool `json:"sgx_retention"`
	} `json:"reverse_engineering"`

	Attacks struct {
		V1ThreadSuccess  float64 `json:"v1_thread_success"`
		V1ProcessSuccess float64 `json:"v1_process_success"`
		V2KernelSuccess  float64 `json:"v2_kernel_success"`
		SGXSuccess       float64 `json:"sgx_success"`
		IPSearchFound    bool    `json:"ip_search_found"`
	} `json:"attacks"`

	Covert struct {
		SingleEntryBps   float64 `json:"single_entry_bps"`
		SingleEntryError float64 `json:"single_entry_error"`
		MaxEntriesBps    float64 `json:"max_entries_bps"`
		MaxEntriesError  float64 `json:"max_entries_error"`
	} `json:"covert"`

	RSA struct {
		BitSuccess        float64 `json:"bit_success"`
		PSCObservation    float64 `json:"psc_observation_accuracy"`
		Minutes1024Budget float64 `json:"minutes_1024_budget"`
	} `json:"rsa"`

	Power struct {
		AlignedFinalT float64 `json:"aligned_final_t"`
		RandomFinalT  float64 `json:"random_final_t"`
	} `json:"power"`

	Mitigation struct {
		Top8Slowdown    float64 `json:"top8_slowdown"`
		OverallSlowdown float64 `json:"overall_slowdown"`
		AnalyticBound   float64 `json:"analytic_bound"`
	} `json:"mitigation"`

	Comparison struct {
		BPUCycles        uint64  `json:"bpu_cycles"`
		PrefetcherCycles uint64  `json:"prefetcher_cycles"`
		Advantage        float64 `json:"advantage"`
	} `json:"comparison"`

	// Phases breaks the V1 thread-scenario run down by attack phase
	// (train/trigger/probe/decode): spans executed and simulated cycles per
	// phase, from the telemetry hub's always-on phase accounting.
	Phases []PhaseSummary `json:"phases,omitempty"`

	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// ReportOptions scales the report's sampling effort.
type ReportOptions struct {
	Seed int64
	// Rounds per success-rate estimate (the paper uses 200).
	Rounds int
	// MitigationInstructions per traced application.
	MitigationInstructions int
}

// FullReport runs the complete reproduction suite and returns the report.
// Expensive, deterministic per seed.
func FullReport(opts ReportOptions) (*Report, error) {
	if opts.Rounds <= 0 {
		opts.Rounds = 100
	}
	if opts.MitigationInstructions <= 0 {
		opts.MitigationInstructions = 120_000
	}
	start := time.Now()
	r := &Report{Schema: "afterimage-report/1", Seed: opts.Seed}

	// Reverse engineering (quiet machines).
	q := NewLab(Options{Seed: opts.Seed, Quiet: true})
	r.Model = q.ModelName()
	boundary := -1
	for _, p := range q.RevFig6() {
		if p.Triggered {
			boundary = p.MatchedBits
			break
		}
	}
	r.ReverseEngineering.Fig6BoundaryBits = boundary

	a, b := q.RevFig7(true), q.RevFig7(false)
	r.ReverseEngineering.Fig7PolicyExact =
		len(a) == 3 && a[0].OldStrideFired && !a[0].NewStrideFired &&
			!a[1].OldStrideFired && !a[1].NewStrideFired &&
			!a[2].OldStrideFired && a[2].NewStrideFired &&
			len(b) == 2 && b[0].OldStrideFired && !b[1].OldStrideFired && b[1].NewStrideFired

	for _, row := range q.RevTable1() {
		want := row.Pool == "recl" || row.PageOffset == 1
		if row.Prefetchable == want {
			r.ReverseEngineering.Table1RowsMatching++
		}
	}
	alive := 0
	for _, p := range q.RevFig8a(26) {
		if p.Triggered {
			alive++
		}
	}
	r.ReverseEngineering.Fig8aEntries = alive
	match8b := true
	for _, p := range q.RevFig8b() {
		if p.Triggered != (p.Index < 8 || p.Index >= 16) {
			match8b = false
		}
	}
	r.ReverseEngineering.Fig8bBitPLRUMatching = match8b
	r.ReverseEngineering.SGXRetention, _ = q.SGXRetention()

	// Attack success rates (noisy machines, fresh lab per experiment).
	v1Lab := NewLab(Options{Seed: opts.Seed})
	r.Attacks.V1ThreadSuccess = v1Lab.RunVariant1(V1Options{Bits: opts.Rounds}).SuccessRate()
	r.Phases = v1Lab.PhaseSummaries()
	r.Attacks.V1ProcessSuccess = NewLab(Options{Seed: opts.Seed + 1}).
		RunVariant1(V1Options{Bits: opts.Rounds, CrossProcess: true}).SuccessRate()
	r.Attacks.V2KernelSuccess = NewLab(Options{Seed: opts.Seed + 2}).
		RunVariant2(V2Options{Bits: opts.Rounds}).SuccessRate()
	r.Attacks.SGXSuccess = NewLab(Options{Seed: opts.Seed + 3}).
		RunSGX(opts.Rounds, nil).SuccessRate()
	search := NewLab(Options{Seed: opts.Seed + 4, Quiet: true}).
		RunVariant2(V2Options{Bits: 4, UseIPSearch: true})
	r.Attacks.IPSearchFound = search.IPSearched && search.FoundIPLow8 == 0xA7

	// Covert channel.
	perCycle := 1.0 / 3e9
	c1 := NewLab(Options{Seed: opts.Seed + 5}).
		RunCovertChannel(CovertOptions{Message: make([]byte, 128)})
	r.Covert.SingleEntryBps = c1.RawBps(perCycle)
	r.Covert.SingleEntryError = c1.ErrorRate()
	c24 := NewLab(Options{Seed: opts.Seed + 6}).
		RunCovertChannel(CovertOptions{Message: make([]byte, 128), Entries: 24})
	r.Covert.MaxEntriesBps = c24.RawBps(perCycle)
	r.Covert.MaxEntriesError = c24.ErrorRate()

	// RSA.
	rsaLab := NewLab(Options{Seed: opts.Seed + 7})
	rr := rsaLab.ExtractRSAKey(RSAOptions{KeyBits: 64, ItersPerBit: 5})
	r.RSA.BitSuccess = rr.BitSuccessRate()
	r.RSA.PSCObservation = rr.PSCSuccessRate()
	perBit := rsaLab.Seconds(rr.Cycles) / float64(rr.BitsTotal)
	r.RSA.Minutes1024Budget = perBit * 1024 / 60

	// Power.
	r.Power.AlignedFinalT = RunTTest(true, opts.Seed).FinalT()
	r.Power.RandomFinalT = RunTTest(false, opts.Seed).FinalT()

	// Mitigation.
	mit, err := RunMitigationStudy(MitigationOptions{
		Instructions: opts.MitigationInstructions, Seed: opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("mitigation study: %w", err)
	}
	r.Mitigation.Top8Slowdown = mit.Top8Slowdown
	r.Mitigation.OverallSlowdown = mit.OverallSlowdown
	r.Mitigation.AnalyticBound = mit.AnalyticUpperBound

	// Comparison.
	cmp := CompareTrainingCosts(opts.Seed)
	r.Comparison.BPUCycles = cmp.BPUCycles
	r.Comparison.PrefetcherCycles = cmp.PrefetcherCycles
	r.Comparison.Advantage = cmp.Advantage()

	r.ElapsedSeconds = time.Since(start).Seconds()
	return r, nil
}

// JSON renders the report with stable indentation.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// jsonUnmarshal is a seam for tests (and avoids importing encoding/json in
// test files).
func jsonUnmarshal(b []byte, v interface{}) error { return json.Unmarshal(b, v) }
