module afterimage

go 1.22
