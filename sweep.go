package afterimage

import (
	"context"
	"encoding/json"
	"fmt"

	"afterimage/internal/faults"
	"afterimage/internal/mem"
	"afterimage/internal/runner"
	"afterimage/internal/sim"
	"afterimage/internal/telemetry"
)

// SweepAttack selects which attack a fault sweep drives.
type SweepAttack int

// The sweepable attacks.
const (
	SweepV1Thread SweepAttack = iota
	SweepV1Process
	SweepV2Kernel
	SweepCovert
)

// String names the attack (CLI spelling).
func (a SweepAttack) String() string {
	switch a {
	case SweepV1Thread:
		return "v1-thread"
	case SweepV1Process:
		return "v1-process"
	case SweepV2Kernel:
		return "v2-kernel"
	case SweepCovert:
		return "covert"
	default:
		return fmt.Sprintf("SweepAttack(%d)", int(a))
	}
}

// seedOffset keeps each attack's lab seed aligned with FullReport's Table 3
// runs, so a zero-intensity sweep point reproduces the reported success rate
// exactly.
func (a SweepAttack) seedOffset() int64 {
	switch a {
	case SweepV1Process:
		return 1
	case SweepV2Kernel:
		return 2
	case SweepCovert:
		return 5
	default:
		return 0
	}
}

// SweepExecMode selects how a sweep provisions its per-point labs.
type SweepExecMode int

const (
	// SweepForked (the default) warms one template lab per campaign and
	// forks every point attempt from it — the shared prefix (machine
	// construction, address-space layout, policy seeding) is paid once
	// instead of per point.
	SweepForked SweepExecMode = iota
	// SweepFresh boots every point attempt from scratch, the pre-fork
	// behaviour. Both modes are bit-identical point for point — gated by
	// the fork-vs-fresh differential suite — so this exists for the
	// differential tests and benchmarks, and as an escape hatch.
	SweepFresh
)

// SweepOptions configures RunFaultSweep.
type SweepOptions struct {
	// Attack is the experiment driven at each intensity.
	Attack SweepAttack
	// Intensities are the fault-engine intensities to sample; default
	// {0, 0.5, 1, 2, 4}. Zero means no perturbation at all.
	Intensities []float64
	// Bits is the secret length per point (message bytes for the covert
	// channel); default 32.
	Bits int
	// Faults is the engine template: Seed, Kinds, and EventsPerMCycle are
	// taken from it, Intensity is overridden per point. A zero Seed derives
	// one from the lab seed.
	Faults faults.Config
	// MaxCycles arms the per-point watchdog so a pathological point cannot
	// hang the sweep; 0 leaves it off.
	MaxCycles uint64
	// Runner supervises the per-point jobs: worker count, retry budget and
	// backoff, checkpoint/resume, per-job wall deadline. The zero value runs
	// the points sequentially with the default retry policy and no
	// checkpoint; for any setting the curve is identical to a sequential
	// straight-through run of the same seed. Fingerprint is derived from the
	// campaign options and must not be set by the caller.
	Runner runner.Options
	// Execution picks forked (default) or fresh per-point labs. The two are
	// bit-identical, so the mode is deliberately EXCLUDED from the campaign
	// fingerprint: checkpoints recorded under either mode resume under the
	// other.
	Execution SweepExecMode
	// Warmup preconditions every point's machine with this many strided
	// loads — a deterministic trace replayed through the batched load API
	// that fills caches and TLB and trains the IP-stride prefetcher before
	// the attack and the fault engine start. Under SweepForked the template
	// runs the trace ONCE and each point forks the warmed state; under
	// SweepFresh every point replays it from scratch. The two are
	// bit-identical point for point (the fault engine only arms after the
	// warmup, so the prefix is genuinely shared), but the forked mode pays
	// the trace once per campaign instead of once per point. Default 0.
	Warmup int
}

// SweepPoint is one (intensity → outcome) sample.
type SweepPoint struct {
	Intensity float64 `json:"intensity"`
	// SuccessRate is the per-bit accuracy (1−ErrorRate for the covert
	// channel).
	SuccessRate float64 `json:"success_rate"`
	// MeanConfidence averages the attack's per-bit confidence (0 for the
	// covert channel, which has no per-bit score).
	MeanConfidence float64 `json:"mean_confidence"`
	Cycles         uint64  `json:"cycles"`
	// FaultEvents is how many perturbations the engine applied.
	FaultEvents uint64 `json:"fault_events"`
	// Err records the fault that terminated the final attempt early, if
	// any; the success rate then covers only the bits observed before it.
	// Kept as the human-readable message for compatibility — FaultKind is
	// the machine-readable classification.
	Err string `json:"err,omitempty"`
	// FaultKind is the sim.FaultKind spelling behind Err ("cycle-budget",
	// "segfault", ...), empty when the point completed cleanly or the error
	// was not a typed simulator fault. Curve consumers use it to tell
	// budget kills from injected crashes without parsing Err.
	FaultKind string `json:"fault_kind,omitempty"`
	// Attempts is how many supervised runs the point consumed; omitted when
	// the first attempt stood. Retried attempts re-derive the fault-engine
	// seed from the attempt number, so each is an independent trial of the
	// same intensity.
	Attempts int `json:"attempts,omitempty"`
	// Degraded marks a point whose failure was permanent or whose retry
	// budget ran out; the campaign recorded it and continued.
	Degraded bool `json:"degraded,omitempty"`
	// Quarantined marks a point on which a corruption fault fired: the
	// auditor caught an invariant violation, the point was re-run from a
	// fresh lab, and its final outcome — successful retry or degraded —
	// must be read with that history in mind.
	Quarantined bool `json:"quarantined,omitempty"`
	// StateHash is the machine's full-state digest at the end of the
	// point's run (fresh runs only; resumed points keep the hash their
	// original run recorded). The replay harness re-executes points from
	// the checkpoint and diffs these.
	StateHash uint64 `json:"state_hash,omitempty"`
	// Phases carries the point lab's attack-phase accounting
	// (train/trigger/probe/decode), which the parent lab also absorbs into
	// its own PhaseSummaries.
	Phases []PhaseSummary `json:"phases,omitempty"`
}

// SweepResult is a success-rate-vs-fault-intensity curve.
type SweepResult struct {
	Attack string       `json:"attack"`
	Model  string       `json:"model"`
	Points []SweepPoint `json:"points"`
}

// JSON renders the curve with stable indentation — the byte-identity unit of
// the parallel/sequential/resume guarantee.
func (r SweepResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunFaultSweep measures how one attack degrades under increasing fault-
// injection intensity: for each requested intensity it boots a fresh lab
// (derived from this lab's options, with the FullReport-aligned seed
// offset), installs a deterministic fault engine, runs the attack through
// its error-hardened variant, and records accuracy, confidence and applied
// perturbations. The whole curve is a pure function of the options and the
// lab seed — rerunning with the same seed reproduces it point for point,
// regardless of worker count or checkpoint resume.
func (l *Lab) RunFaultSweep(o SweepOptions) SweepResult {
	res, _ := l.RunFaultSweepCtx(context.Background(), o)
	return res
}

// RunFaultSweepCtx is RunFaultSweep under a campaign context: the points run
// as supervised jobs on o.Runner's worker pool, transient per-point faults
// are retried with deterministic backoff, permanently failing points are
// recorded as degraded instead of aborting the curve, and — when a
// checkpoint is configured — every completed point is persisted so a killed
// sweep resumes where it stopped. A canceled context returns the completed
// prefix of the curve together with the cancellation error.
func (l *Lab) RunFaultSweepCtx(ctx context.Context, o SweepOptions) (SweepResult, error) {
	if err := o.Validate(); err != nil {
		return SweepResult{Attack: o.Attack.String(), Model: l.ModelName()}, err
	}
	o, labOpts := l.sweepNormalize(o)

	// Forked execution warms the campaign's shared prefix once: one pristine
	// template lab per configuration, forked for every point attempt. The
	// template is never run, so concurrent forks from parallel workers are
	// concurrent reads.
	var tmpl *Lab
	if o.Execution == SweepForked {
		tmpl = NewLab(labOpts)
		tmpl.runSweepWarmup(o.Warmup)
	}

	// childLabs retains each point's lab (fresh runs only) so the parent can
	// absorb its event trace after the pool drains; distinct indices make
	// the writes race-free under parallel workers.
	childLabs := make([]*Lab, len(o.Intensities))
	jobs := make([]runner.Job, len(o.Intensities))
	for i, intensity := range o.Intensities {
		i, intensity := i, intensity
		jobs[i] = runner.Job{
			Key: sweepPointKey(o.Attack, i, intensity),
			Run: func(jctx context.Context, attempt int) (any, error) {
				pt, lab, err := runSweepPoint(jctx, tmpl, labOpts, o, intensity, attempt, l.traceOn, l.traceCap)
				if l.traceOn {
					childLabs[i] = lab
				}
				return pt, err
			},
		}
	}

	ropts := o.Runner
	if ropts.Seed == 0 {
		ropts.Seed = labOpts.Seed
	}
	if ropts.Metrics == nil {
		ropts.Metrics = l.m.Telemetry().Registry()
	}
	ropts.Fingerprint = sweepFingerprint(labOpts, o)

	jrs, rerr := runner.Run(ctx, jobs, ropts)

	res := SweepResult{Attack: o.Attack.String(), Model: l.ModelName()}
	tel := l.m.Telemetry()
	for i, jr := range jrs {
		if jr.Skipped {
			continue // canceled before completion; a resume re-runs it
		}
		pt := SweepPoint{Intensity: o.Intensities[i]}
		if len(jr.Value) > 0 {
			if uerr := json.Unmarshal(jr.Value, &pt); uerr != nil && rerr == nil {
				rerr = fmt.Errorf("sweep: corrupt point %q: %w", jr.Key, uerr)
			}
		}
		if jr.Err != "" && pt.Err == "" {
			pt.Err = jr.Err
		}
		if pt.FaultKind == "" {
			pt.FaultKind = jr.FaultKind
		}
		if jr.Attempts > 1 {
			pt.Attempts = jr.Attempts
		}
		pt.Degraded = jr.Degraded
		pt.Quarantined = hasCorruptionHistory(jr.FaultHistory)
		tel.AbsorbSummaries(pt.Phases)
		// Into the campaign's metrics registry (the server's, when run under
		// one), so the per-phase breakdown reaches /metrics.
		observePhaseCycles(ropts.Metrics, pt.Phases)
		if childLabs[i] != nil {
			tel.AbsorbEvents(childLabs[i].m.Telemetry().Events())
		}
		res.Points = append(res.Points, pt)
	}
	return res, rerr
}

// sweepNormalize fills the sweep defaults and derives the per-point lab
// options (FullReport-aligned seed offset, per-point watchdog) — shared by
// the sweep itself and the replay harness so both derive identical points.
func (l *Lab) sweepNormalize(o SweepOptions) (SweepOptions, Options) {
	if len(o.Intensities) == 0 {
		o.Intensities = []float64{0, 0.5, 1, 2, 4}
	}
	if o.Bits <= 0 {
		o.Bits = 32
	}
	labOpts := l.opts
	labOpts.Seed += o.Attack.seedOffset()
	if o.MaxCycles != 0 {
		labOpts.MaxCycles = o.MaxCycles
	}
	return o, labOpts
}

// sweepWarmupPages sizes the preconditioning buffer: 64 locked pages of
// line-granular strided traffic.
const sweepWarmupPages = 64

// runSweepWarmup replays the campaign's preconditioning trace: n loads from
// 16 interleaved IPs, each walking its own line-granular progression over a
// shared 64-page buffer — enough to fill the upper cache levels, populate
// the TLB and keep the IP-stride prefetcher trained and firing. The trace
// is a pure function of the load index, so a template that runs it once and
// a fresh lab that replays it per point reach identical state. It runs
// through the batched load API in 256-op chunks with a reused latency
// buffer, which keeps the whole warmup on the zero-allocation path.
func (l *Lab) runSweepWarmup(n int) {
	if n <= 0 {
		return
	}
	env := l.m.Direct(l.m.NewProcess("sweep-warmup"))
	buf := env.Mmap(sweepWarmupPages*mem.PageSize, mem.MapLocked)
	lines := sweepWarmupPages * (mem.PageSize / mem.LineSize)
	ops := make([]sim.LoadOp, 256)
	lats := make([]uint64, 0, len(ops))
	for done := 0; done < n; {
		k := len(ops)
		if n-done < k {
			k = n - done
		}
		for i := 0; i < k; i++ {
			idx := done + i
			line := (idx/16 + idx%16*37) % lines
			ops[i] = sim.LoadOp{
				IP: 0x5a_0000 + uint64(idx%16)*0x40,
				VA: buf.Base + mem.VAddr(line)*mem.LineSize,
			}
		}
		env.LoadBatch(ops[:k], lats[:0])
		done += k
	}
}

// sweepPointKey is the stable checkpoint key of one sweep point.
func sweepPointKey(a SweepAttack, i int, intensity float64) string {
	return fmt.Sprintf("%s/%02d@%g", a, i, intensity)
}

// sweepFingerprint identifies a sweep campaign for checkpoint validation.
// AuditEvery is zeroed first: audits are read-only, so a cadence change does
// not invalidate recorded results (matching table3Fingerprint).
func sweepFingerprint(labOpts Options, o SweepOptions) string {
	labOpts.AuditEvery = 0
	return runner.Fingerprint(struct {
		Kind        string
		Lab         Options
		Attack      string
		Intensities []float64
		Bits        int
		Warmup      int
		Faults      faults.Config
	}{"fault-sweep/2", labOpts, o.Attack.String(), o.Intensities, o.Bits, o.Warmup, o.Faults})
}

// phaseCycleBounds bucket per-phase simulated time: a training pass on a
// tiny campaign is thousands of cycles, a full-report probe phase millions.
var phaseCycleBounds = []uint64{1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// observePhaseCycles feeds each completed point's attack-phase durations
// into sim.phase.<name>.cycles histograms, so the per-stage breakdown the
// span tree shows per campaign is also queryable in aggregate on /metrics.
func observePhaseCycles(reg *telemetry.Registry, phases []PhaseSummary) {
	for _, p := range phases {
		reg.Histogram("sim.phase."+p.Name+".cycles", phaseCycleBounds).Observe(p.Cycles)
	}
}

// hasCorruptionHistory reports whether any attempt of a job died on an
// invariant-audit (corruption) fault.
func hasCorruptionHistory(history []string) bool {
	for _, h := range history {
		if h == sim.FaultCorruption.String() {
			return true
		}
	}
	return false
}

// runSweepPoint executes one sweep point in its own lab — a fork of the
// campaign template when one is provided, else a fresh boot (the two are
// bit-identical; replay re-executes points fresh and diffs hashes against
// campaigns recorded either way). It installs the salted fault engine,
// runs the attack through its error-hardened variant, then audits the
// final machine state and digests it. A failing final audit turns an
// otherwise-successful attempt into a corruption fault, so silently
// corrupted points are retried (quarantined) instead of reported.
func runSweepPoint(jctx context.Context, tmpl *Lab, labOpts Options, o SweepOptions, intensity float64, attempt int, trace bool, traceCap int) (SweepPoint, *Lab, error) {
	var lab *Lab
	if tmpl != nil {
		lab = tmpl.MustFork()
	} else {
		lab = NewLab(labOpts)
		lab.runSweepWarmup(o.Warmup)
	}
	if trace {
		lab.EnableTrace(traceCap)
	}
	lab.ArmCancel(jctx)
	var eng *faults.Engine
	if intensity > 0 {
		fc := o.Faults
		fc.Intensity = intensity
		if fc.Seed == 0 {
			fc.Seed = labOpts.Seed + 811
		}
		// Retries are independent trials of the same intensity:
		// salt the schedule, keep the lab seed (point identity).
		fc.Seed += int64(attempt) * 7919
		eng = lab.InjectFaults(fc)
	}
	pt := SweepPoint{Intensity: intensity}
	var err error
	switch o.Attack {
	case SweepV1Process:
		var r LeakResult
		r, err = lab.RunVariant1E(V1Options{Bits: o.Bits, CrossProcess: true})
		pt.SuccessRate, pt.MeanConfidence, pt.Cycles = r.SuccessRate(), r.MeanConfidence(), r.Cycles
	case SweepV2Kernel:
		var r V2Result
		r, err = lab.RunVariant2E(V2Options{Bits: o.Bits})
		pt.SuccessRate, pt.MeanConfidence, pt.Cycles = r.SuccessRate(), r.MeanConfidence(), r.Cycles
	case SweepCovert:
		var r CovertResult
		r, err = lab.RunCovertChannelE(CovertOptions{Message: make([]byte, o.Bits)})
		pt.SuccessRate, pt.Cycles = 1-r.ErrorRate(), r.Cycles
	default:
		var r LeakResult
		r, err = lab.RunVariant1E(V1Options{Bits: o.Bits})
		pt.SuccessRate, pt.MeanConfidence, pt.Cycles = r.SuccessRate(), r.MeanConfidence(), r.Cycles
	}
	if err == nil {
		// Final audit: whatever the cadence setting, a point never reports
		// success over structurally corrupt state.
		err = lab.m.Audit()
	}
	if err != nil {
		pt.Err = err.Error()
		if f, ok := AsFault(err); ok {
			pt.FaultKind = f.Kind.String()
		}
	}
	if eng != nil {
		pt.FaultEvents = eng.Stats().Total
	}
	pt.StateHash = lab.m.StateHash()
	pt.Phases = lab.PhaseSummaries()
	return pt, lab, err
}
