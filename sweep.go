package afterimage

import (
	"fmt"

	"afterimage/internal/faults"
)

// SweepAttack selects which attack a fault sweep drives.
type SweepAttack int

// The sweepable attacks.
const (
	SweepV1Thread SweepAttack = iota
	SweepV1Process
	SweepV2Kernel
	SweepCovert
)

// String names the attack (CLI spelling).
func (a SweepAttack) String() string {
	switch a {
	case SweepV1Thread:
		return "v1-thread"
	case SweepV1Process:
		return "v1-process"
	case SweepV2Kernel:
		return "v2-kernel"
	case SweepCovert:
		return "covert"
	default:
		return fmt.Sprintf("SweepAttack(%d)", int(a))
	}
}

// seedOffset keeps each attack's lab seed aligned with FullReport's Table 3
// runs, so a zero-intensity sweep point reproduces the reported success rate
// exactly.
func (a SweepAttack) seedOffset() int64 {
	switch a {
	case SweepV1Process:
		return 1
	case SweepV2Kernel:
		return 2
	case SweepCovert:
		return 5
	default:
		return 0
	}
}

// SweepOptions configures RunFaultSweep.
type SweepOptions struct {
	// Attack is the experiment driven at each intensity.
	Attack SweepAttack
	// Intensities are the fault-engine intensities to sample; default
	// {0, 0.5, 1, 2, 4}. Zero means no perturbation at all.
	Intensities []float64
	// Bits is the secret length per point (message bytes for the covert
	// channel); default 32.
	Bits int
	// Faults is the engine template: Seed, Kinds, and EventsPerMCycle are
	// taken from it, Intensity is overridden per point. A zero Seed derives
	// one from the lab seed.
	Faults faults.Config
	// MaxCycles arms the per-point watchdog so a pathological point cannot
	// hang the sweep; 0 leaves it off.
	MaxCycles uint64
}

// SweepPoint is one (intensity → outcome) sample.
type SweepPoint struct {
	Intensity float64 `json:"intensity"`
	// SuccessRate is the per-bit accuracy (1−ErrorRate for the covert
	// channel).
	SuccessRate float64 `json:"success_rate"`
	// MeanConfidence averages the attack's per-bit confidence (0 for the
	// covert channel, which has no per-bit score).
	MeanConfidence float64 `json:"mean_confidence"`
	Cycles         uint64  `json:"cycles"`
	// FaultEvents is how many perturbations the engine applied.
	FaultEvents uint64 `json:"fault_events"`
	// Err records the fault that terminated the run early, if any; the
	// success rate then covers only the bits observed before it.
	Err string `json:"err,omitempty"`
}

// SweepResult is a success-rate-vs-fault-intensity curve.
type SweepResult struct {
	Attack string       `json:"attack"`
	Model  string       `json:"model"`
	Points []SweepPoint `json:"points"`
}

// RunFaultSweep measures how one attack degrades under increasing fault-
// injection intensity: for each requested intensity it boots a fresh lab
// (derived from this lab's options, with the FullReport-aligned seed
// offset), installs a deterministic fault engine, runs the attack through
// its error-hardened variant, and records accuracy, confidence and applied
// perturbations. The whole curve is a pure function of the options and the
// lab seed — rerunning with the same seed reproduces it point for point.
func (l *Lab) RunFaultSweep(o SweepOptions) SweepResult {
	if len(o.Intensities) == 0 {
		o.Intensities = []float64{0, 0.5, 1, 2, 4}
	}
	if o.Bits <= 0 {
		o.Bits = 32
	}
	labOpts := l.opts
	labOpts.Seed += o.Attack.seedOffset()
	if o.MaxCycles != 0 {
		labOpts.MaxCycles = o.MaxCycles
	}

	res := SweepResult{Attack: o.Attack.String(), Model: l.ModelName()}
	for _, intensity := range o.Intensities {
		lab := NewLab(labOpts)
		var eng *faults.Engine
		if intensity > 0 {
			fc := o.Faults
			fc.Intensity = intensity
			if fc.Seed == 0 {
				fc.Seed = labOpts.Seed + 811
			}
			eng = lab.InjectFaults(fc)
		}
		pt := SweepPoint{Intensity: intensity}
		var err error
		switch o.Attack {
		case SweepV1Process:
			var r LeakResult
			r, err = lab.RunVariant1E(V1Options{Bits: o.Bits, CrossProcess: true})
			pt.SuccessRate, pt.MeanConfidence, pt.Cycles = r.SuccessRate(), r.MeanConfidence(), r.Cycles
		case SweepV2Kernel:
			var r V2Result
			r, err = lab.RunVariant2E(V2Options{Bits: o.Bits})
			pt.SuccessRate, pt.MeanConfidence, pt.Cycles = r.SuccessRate(), r.MeanConfidence(), r.Cycles
		case SweepCovert:
			var r CovertResult
			r, err = lab.RunCovertChannelE(CovertOptions{Message: make([]byte, o.Bits)})
			pt.SuccessRate, pt.Cycles = 1-r.ErrorRate(), r.Cycles
		default:
			var r LeakResult
			r, err = lab.RunVariant1E(V1Options{Bits: o.Bits})
			pt.SuccessRate, pt.MeanConfidence, pt.Cycles = r.SuccessRate(), r.MeanConfidence(), r.Cycles
		}
		if err != nil {
			pt.Err = err.Error()
		}
		if eng != nil {
			pt.FaultEvents = eng.Stats().Total
		}
		res.Points = append(res.Points, pt)
	}
	return res
}
