package afterimage

// Differential harness for the zero-alloc hot-path overhaul: the flattened
// cache/TLB/prefetcher/page-table implementations must be observationally
// indistinguishable from the seed implementations. The goldens in
// testdata/hotpath_golden.json were recorded BEFORE the hot path was
// rewritten, so every digest here is a seed-path digest; the optimized path
// must reproduce each one bit-for-bit. Three layers of coverage:
//
//   - every Table 3 experiment's final full-machine state hash,
//   - every point of a fault-sweep campaign (scheduler, noise, perturbation
//     and audit paths all exercised),
//   - randomized direct-env access traces (loads, flushes, fences, TLB
//     pressure, cross-process aliasing) over several seeds.
//
// Regenerate with: AFTERIMAGE_UPDATE_GOLDEN=1 go test -run TestHotPathDifferential
// — but note that overwriting the goldens discards the seed-path reference;
// only do so for an intentional, reviewed simulator-semantics change.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"afterimage/internal/mem"
	"afterimage/internal/sim"
)

const hotpathGoldenPath = "testdata/hotpath_golden.json"

// hotpathGolden is the recorded seed-path digest set. Digests are hex
// strings so the JSON is diffable and safe across tooling that mangles
// 64-bit integers.
type hotpathGolden struct {
	Schema string            `json:"schema"`
	Table3 map[string]string `json:"table3"`
	Sweep  []string          `json:"sweep"`
	Traces map[string]string `json:"traces"`
}

func hexDigest(h uint64) string { return fmt.Sprintf("%#016x", h) }

func updateGolden() bool { return os.Getenv("AFTERIMAGE_UPDATE_GOLDEN") != "" }

func loadHotpathGolden(t *testing.T) *hotpathGolden {
	t.Helper()
	raw, err := os.ReadFile(hotpathGoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with AFTERIMAGE_UPDATE_GOLDEN=1): %v", err)
	}
	var g hotpathGolden
	if err := json.Unmarshal(raw, &g); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	return &g
}

func writeHotpathGolden(t *testing.T, mutate func(g *hotpathGolden)) {
	t.Helper()
	g := &hotpathGolden{Schema: "afterimage/hotpath-golden/1",
		Table3: map[string]string{}, Traces: map[string]string{}}
	if raw, err := os.ReadFile(hotpathGoldenPath); err == nil {
		_ = json.Unmarshal(raw, g)
	}
	mutate(g)
	out, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(hotpathGoldenPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// hotpathReportOptions keeps the Table 3 leg fast enough for every CI run
// while still driving each attack through its full train/trigger/probe
// machinery.
func hotpathReportOptions() ReportOptions {
	return ReportOptions{Seed: 1, Rounds: 12}
}

// TestHotPathDifferentialTable3 re-runs every Table 3 experiment and
// compares its final full-machine state hash against the seed-path digest.
// A single flipped replacement bit, stray counter increment or reordered
// prefetch anywhere in the memory subsystem changes the digest.
func TestHotPathDifferentialTable3(t *testing.T) {
	opts := hotpathReportOptions()
	got := map[string]string{}
	for i, spec := range table3Specs(opts) {
		val, err := runTable3Spec(context.Background(), table3LabOptions(opts, i, spec.key), spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.key, err)
		}
		got[spec.key] = hexDigest(val.StateHash)
	}
	if updateGolden() {
		writeHotpathGolden(t, func(g *hotpathGolden) { g.Table3 = got })
		t.Log("updated", hotpathGoldenPath)
		return
	}
	want := loadHotpathGolden(t).Table3
	for key, w := range want {
		if got[key] != w {
			t.Errorf("table3 %s: state hash %s, seed path recorded %s", key, got[key], w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("experiment set drifted: %d run, %d recorded", len(got), len(want))
	}
}

// hotpathSweepOptions is the fault-sweep campaign the golden pins: the
// default intensity ladder over the V1 cross-thread attack.
func hotpathSweepOptions() SweepOptions {
	return SweepOptions{
		Attack:      SweepV1Thread,
		Intensities: []float64{0, 0.5, 1, 2, 4},
		Bits:        8,
	}
}

// TestHotPathDifferentialFaultSweep runs one full fault-sweep campaign and
// compares every point's recorded machine hash against the seed path.
func TestHotPathDifferentialFaultSweep(t *testing.T) {
	res := NewLab(Options{Seed: 42, Quiet: true}).RunFaultSweep(hotpathSweepOptions())
	got := make([]string, len(res.Points))
	for i, pt := range res.Points {
		got[i] = hexDigest(pt.StateHash)
	}
	if updateGolden() {
		writeHotpathGolden(t, func(g *hotpathGolden) { g.Sweep = got })
		t.Log("updated", hotpathGoldenPath)
		return
	}
	want := loadHotpathGolden(t).Sweep
	if len(got) != len(want) {
		t.Fatalf("sweep has %d points, seed path recorded %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sweep point %d: state hash %s, seed path recorded %s", i, got[i], want[i])
		}
	}
}

// traceRig is one randomized-trace machine with its processes, envs and
// mappings bound: the shared substrate of the hot-path and fork-vs-fresh
// differential suites. The fork differential re-binds the same rig over a
// forked machine (see forkTraceRig in fork_diff_test.go) and replays the
// identical step stream, so the driver below must be the single source of
// the trace semantics.
type traceRig struct {
	m                                 *sim.Machine
	ea, eb                            *sim.Env
	bufA, recl, shared, sharedB, bufB *mem.Mapping
}

// newTraceRig boots a quiet machine with the differential suite's standard
// topology: two processes, locked/reclaimable/shared mappings in A, a
// cross-process alias of the shared mapping in B, and a private buffer in B.
func newTraceRig(seed int64) *traceRig {
	m := sim.NewMachine(sim.Quiet(sim.CoffeeLake(seed)))
	pa := m.NewProcess("a")
	pb := m.NewProcess("b")
	r := &traceRig{m: m, ea: m.Direct(pa), eb: m.Direct(pb)}

	r.bufA = r.ea.Mmap(32*mem.PageSize, mem.MapLocked)
	r.recl = r.ea.Mmap(16*mem.PageSize, mem.MapReclaimable)
	r.shared = r.ea.Mmap(4*mem.PageSize, mem.MapShared)
	r.sharedB = pb.AS.MapExisting(r.shared)
	r.bufB = r.eb.Mmap(8*mem.PageSize, mem.MapLocked)
	return r
}

// run executes steps of the randomized access trace — strided and
// pointer-chase loads under many IPs, cross-process shared mappings,
// reclaimable aliasing, flushes, fences, TLB-thrashing sweeps. Decisions
// draw from the machine's own auxiliary RNG, which Machine.Fork clones at
// its exact stream position, so a run split across a fork consumes the
// same decision stream as an unbroken run.
func (r *traceRig) run(steps int) {
	rng := r.m.Rand()
	for step := 0; step < steps; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2: // strided loads in A: trains the IP-stride table
			ip := 0x400000 + uint64(rng.Intn(16))*0x40
			stride := int64(rng.Intn(64)-32) * mem.LineSize
			base := r.bufA.Base + mem.VAddr(rng.Intn(24))*mem.PageSize
			v := int64(base) + int64(rng.Intn(32))*mem.LineSize
			for i := 0; i < 4; i++ {
				if v >= int64(r.bufA.Base) && v < int64(r.bufA.End()) {
					r.ea.Load(ip, mem.VAddr(v))
				}
				v += stride
			}
		case 3: // reclaimable-pool loads: page-aliased frames
			r.ea.Load(0x400800, r.recl.Base+mem.VAddr(rng.Intn(16))*mem.PageSize+
				mem.VAddr(rng.Intn(64))*mem.LineSize)
		case 4: // cross-process shared-mapping loads (Flush+Reload substrate)
			off := mem.VAddr(rng.Intn(4)) * mem.PageSize
			r.ea.Load(0x401000, r.shared.Base+off)
			r.eb.Load(0x501000, r.sharedB.Base+off)
		case 5: // B's private loads: TLB/cache capacity contention
			r.eb.Load(0x500000+uint64(rng.Intn(8))*0x40,
				r.bufB.Base+mem.VAddr(rng.Intn(8))*mem.PageSize+
					mem.VAddr(rng.Intn(64))*mem.LineSize)
		case 6: // clflush of a recently plausible line
			r.ea.Flush(r.bufA.Base + mem.VAddr(rng.Intn(32*64))*mem.LineSize)
		case 7: // serialising fence: resets stream detectors
			r.ea.Fence()
		case 8: // timed load: the attacker's measurement path (jitter RNG)
			r.ea.TimeLoad(0x402000, r.bufA.Base+mem.VAddr(rng.Intn(32*64))*mem.LineSize)
		case 9: // TLB-thrashing page sweep
			for i := 0; i < 8; i++ {
				r.ea.Load(0x403000, r.bufA.Base+mem.VAddr(rng.Intn(32))*mem.PageSize)
			}
		}
	}
}

// randomTraceDigest drives one machine through the full randomized trace
// and returns the final full-state hash. Everything derives from the seed,
// so the digest is a pure function of it.
func randomTraceDigest(seed int64) uint64 {
	r := newTraceRig(seed)
	r.run(4000)
	return r.m.StateHash()
}

// TestHotPathDifferentialRandomTraces replays randomized load traces over
// several seeds and compares each final machine digest with the seed path.
func TestHotPathDifferentialRandomTraces(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 99}
	got := map[string]string{}
	for _, s := range seeds {
		got[fmt.Sprint(s)] = hexDigest(randomTraceDigest(s))
	}
	if updateGolden() {
		writeHotpathGolden(t, func(g *hotpathGolden) { g.Traces = got })
		t.Log("updated", hotpathGoldenPath)
		return
	}
	want := loadHotpathGolden(t).Traces
	for s, w := range want {
		if got[s] != w {
			t.Errorf("trace seed %s: state hash %s, seed path recorded %s", s, got[s], w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("trace seed set drifted: %d run, %d recorded", len(got), len(want))
	}
}
