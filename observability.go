package afterimage

import (
	"fmt"
	"io"

	"afterimage/internal/telemetry"
)

// PhaseSummary re-exports the per-attack-phase aggregate (spans, simulated
// cycles, attributed trace events) for callers that stay outside internal/.
type PhaseSummary = telemetry.PhaseSummary

// MetricsSnapshot re-exports the registry snapshot type.
type MetricsSnapshot = telemetry.Snapshot

// EnableTrace turns on cycle-accurate event recording on the lab's machine
// with the given ring capacity (<=0 selects telemetry.DefaultBusCapacity,
// 256k events). Until called, tracing costs nothing on the simulation's hot
// paths. Once the ring fills, the oldest events are overwritten and counted —
// see TraceDropped.
func (l *Lab) EnableTrace(capacity int) {
	l.traceOn, l.traceCap = true, capacity
	l.m.Telemetry().EnableTrace(capacity)
}

// DisableTrace stops event recording and discards the retained trace.
func (l *Lab) DisableTrace() {
	l.traceOn = false
	l.m.Telemetry().DisableTrace()
}

// TraceEnabled reports whether event recording is on.
func (l *Lab) TraceEnabled() bool { return l.m.Telemetry().TraceEnabled() }

// TraceDropped reports how many events the trace ring overwrote (0 when the
// whole run fit, or when tracing is off).
func (l *Lab) TraceDropped() uint64 {
	if b := l.m.Telemetry().Bus(); b != nil {
		return b.Dropped()
	}
	return 0
}

// WriteTrace exports the retained event trace as Chrome trace_event JSON,
// loadable in chrome://tracing and https://ui.perfetto.dev. It fails when
// tracing was never enabled.
func (l *Lab) WriteTrace(w io.Writer) error {
	tel := l.m.Telemetry()
	if !tel.TraceEnabled() {
		return fmt.Errorf("afterimage: tracing not enabled (call Lab.EnableTrace before running)")
	}
	return telemetry.WriteChromeTrace(w, tel.Events(), telemetry.TraceMeta{
		Process: l.m.Cfg.Name,
		GHz:     l.m.Cfg.GHz,
		Dropped: tel.Bus().Dropped(),
	})
}

// MetricsSnapshot captures the machine-wide metrics registry: every cache
// level, the dTLB, all four prefetchers, the scheduler and any installed
// fault engine, under namespaced keys (cache.l1.hits, prefetcher.ipstride.
// trains, sched.switches, faults.injected, ...). Values are sampled live and
// agree exactly with the legacy per-component Stats() accessors.
func (l *Lab) MetricsSnapshot() MetricsSnapshot {
	return l.m.Telemetry().Registry().Snapshot()
}

// PhaseSummaries reports the per-phase aggregates (train/trigger/probe/
// decode) accumulated by the attack loops, in order of first appearance.
// Phase accounting is always on; it does not require EnableTrace.
func (l *Lab) PhaseSummaries() []PhaseSummary {
	return l.m.Telemetry().PhaseSummaries()
}
